"""Seed-robustness: calibrated statistics hold across seeds.

Guards against over-fitting the paper's anchors to one lucky seed: the
headline statistics must stay inside their asserted bands for several
master seeds.
"""

import pytest

from repro.capture.storage import PageCacheModel
from repro.study.activity import NetworkActivityModel
from repro.study.slices import slice_study
from repro.testbed import FederationBuilder, InformationModel

pytestmark = pytest.mark.slow

SITES = [f"S{i}" for i in range(30)]


class TestSliceStudySeeds:
    @pytest.mark.parametrize("seed", [3, 7, 19, 101])
    def test_headline_bands(self, seed):
        result = slice_study(SITES, weeks=26, seed=seed)
        assert 0.62 <= result.single_site_fraction <= 0.71
        assert 0.68 <= result.p_duration_le_24h <= 0.82
        assert 55 <= result.concurrency_mean <= 120
        assert 25 <= result.concurrency_std <= 90


class TestActivitySeeds:
    @pytest.mark.parametrize("seed", [5, 13, 77])
    def test_peak_lands_in_autumn(self, seed):
        schedule = slice_study(SITES, weeks=52, seed=seed).schedule
        model = NetworkActivityModel(schedule, seed=seed)
        peak = model.peak()
        assert 43 <= peak.week <= 49
        assert 1.0 <= peak.mean_tbps <= 12.0


class TestFederationSeeds:
    @pytest.mark.parametrize("seed", [1, 42, 1234])
    def test_fig2_shape_holds(self, seed):
        federation = FederationBuilder(seed=seed).build()
        counts = InformationModel(federation).port_distribution()
        assert all(c.downlinks > c.uplinks for c in counts)
        assert max(c.uplinks for c in counts) <= 8


class TestStorageSeeds:
    @pytest.mark.parametrize("seed", [1, 99, 4321])
    def test_fig14_gap_holds(self, seed):
        def at_21(bg, ratio):
            model = PageCacheModel(dirty_background_ratio=bg,
                                   dirty_ratio=ratio, seed=seed)
            sweep = model.fill_sweep(max_usage_percent=24)
            return next(p.summed_latency_ms for p in sweep
                        if p.usage_percent == 21)

        assert at_21(10, 20) / at_21(20, 50) > 20
