"""Tests for the per-sample frame-conservation ledger.

The harness rebuilds the paper's mirror-overload hazard on a real
simulated switch (like test_integration_congestion) but adds the
receiving half: a dedicated NIC attached to the mirror port and a real
CaptureSession, so every ledger population -- offered, cloned,
delivered, captured -- comes from live dataplane counters.
"""

import pytest

from repro.capture.session import CaptureMethod, CaptureSession
from repro.core.congestion import CongestionDetector
from repro.netsim.engine import Simulator
from repro.netsim.frame import Frame
from repro.obs import Observability, scoped
from repro.obs.ledger import (
    CAUSES,
    CongestionScorecard,
    LedgerRecorder,
    SampleLedger,
    attach_digests,
    scorecard_from_ledgers,
)
from repro.telemetry.mflib import MFlib
from repro.telemetry.timeseries import CounterStore
from repro.testbed.nic import DedicatedNIC
from repro.testbed.switch import DOWNLINK, Switch

MAC_A = b"\x02\x00\x00\x00\x00\x01"
MAC_B = b"\x02\x00\x00\x00\x00\x02"

LINE_BPS = 80_000.0  # 10 kB/s
FRAME_BYTES = 500


def frame_to(dst, src, size=FRAME_BYTES):
    return Frame(wire_len=size, head=dst + src + b"\x08\x00" + b"\x00" * 50)


def build_world(queue_limit_bytes=4000):
    """Switch with a mirrored port feeding a NIC-backed capture port."""
    sim = Simulator()
    switch = Switch(sim, "tor", default_rate_bps=LINE_BPS,
                    queue_limit_bytes=queue_limit_bytes)
    switch.add_port("src", DOWNLINK)
    switch.add_port("dst", DOWNLINK)
    switch.add_port("mir", DOWNLINK)
    switch.register_mac(MAC_B, "dst")
    switch.register_mac(MAC_A, "src")
    switch.create_mirror("src", "mir")
    nic = DedicatedNIC()
    nic.ports[0].attach(switch.ports["mir"].link, "mir")
    return sim, switch, nic.ports[0]


def offer_load(sim, switch, fraction, duration, rx=True, tx=True):
    """Schedule traffic on src's Rx/Tx at a fraction of line rate."""
    rate_Bps = (LINE_BPS / 8.0) * fraction
    count = int(rate_Bps * duration / FRAME_BYTES)
    interval = duration / max(count, 1)
    for i in range(count):
        when = sim.now + i * interval
        if rx:
            sim.schedule_at(when, switch.ports["src"].link.rx.offer,
                            frame_to(MAC_B, MAC_A))
        if tx:
            sim.schedule_at(when, switch.ports["dst"].link.rx.offer,
                            frame_to(MAC_A, MAC_B))


def run_sample(fraction, duration=20.0, method=CaptureMethod.TCPDUMP,
               check_congestion=True, **session_kwargs):
    """One full capture window under the given load; returns the row."""
    sim, switch, nic_port = build_world()
    store = CounterStore()

    def poll(t):
        for port_id, counters in switch.port_counters().items():
            for name, value in counters.items():
                store.append("S", port_id, name, t, value)

    poll(sim.now)
    session = CaptureSession(sim, nic_port, None, method=method,
                             **session_kwargs)
    recorder = LedgerRecorder(switch, "S", instance="t1")
    session.start()
    window = recorder.open(mirrored_port="src", dest_port="mir",
                           pcap="S/sample.pcap", method=method.value)
    start = sim.now
    offer_load(sim, switch, fraction, duration)
    sim.run(until=sim.now + duration)
    poll(sim.now)
    stats = session.stop()
    verdict = None
    if check_congestion:
        verdict = CongestionDetector(MFlib(store)).check(
            "S", "src", LINE_BPS, start, sim.now).overloaded
    return window.close(stats, verdict=verdict)


class TestConservation:
    def test_clean_sample_conserves_with_zero_drops(self):
        row = run_sample(0.3)
        assert row.ok
        assert row.conservation_error() == 0
        assert row.total_drops == 0
        assert row.generated == row.captured > 0
        assert row.delivered == row.frames_seen

    def test_overload_attributed_to_mirror_egress(self):
        row = run_sample(0.7)
        assert row.ok
        assert row.drops["mirror-egress"] > 0
        assert row.generated == row.captured + row.total_drops
        # Rx 70% + Tx 70% cannot fit a 100% egress: a sizable share of
        # the window's frames must die at the mirror queue.
        assert row.drops["mirror-egress"] > 0.1 * row.generated

    def test_verdict_and_truth_agree_at_the_extremes(self):
        congested = run_sample(0.7)
        clean = run_sample(0.3)
        assert congested.verdict_overloaded is True
        assert congested.mirror_overloaded_truth is True
        assert clean.verdict_overloaded is False
        assert clean.mirror_overloaded_truth is False

    def test_in_flight_frames_carried_out_not_lost(self):
        # Stop the window while a burst is still queued at the mirror
        # egress: those frames are accounted as in-flight, not lost.
        sim, switch, nic_port = build_world()
        session = CaptureSession(sim, nic_port, None)
        recorder = LedgerRecorder(switch, "S")
        session.start()
        window = recorder.open(mirrored_port="src", dest_port="mir",
                               pcap="S/burst.pcap", method="tcpdump")
        for _ in range(5):
            switch.ports["src"].link.rx.offer(frame_to(MAC_B, MAC_A))
        # Run just long enough for the Rx channel to deliver the frames
        # to the switch (so they are cloned) but not for the mirror
        # egress to serialize them all out.
        sim.run(until=sim.now + 0.1)
        row = window.close(session.stop())
        assert row.ok
        assert row.drops["in-flight"] > 0
        assert row.captured + row.drops["in-flight"] + \
            row.drops["mirror-egress"] == row.generated

    def test_carry_in_joins_generated(self):
        # Window 2 opens while window 1's tail is still in flight; the
        # tail is window 1's in-flight drop and window 2's carry-in.
        sim, switch, nic_port = build_world()
        session = CaptureSession(sim, nic_port, None)
        recorder = LedgerRecorder(switch, "S")
        session.start()
        w1 = recorder.open(mirrored_port="src", dest_port="mir",
                           pcap="S/w1.pcap", method="tcpdump")
        for _ in range(5):
            switch.ports["src"].link.rx.offer(frame_to(MAC_B, MAC_A))
        sim.run(until=sim.now + 0.1)
        row1 = w1.close(session.stop())
        assert row1.drops["in-flight"] > 0
        session2 = CaptureSession(sim, nic_port, None)
        session2.start()
        w2 = recorder.open(mirrored_port="src", dest_port="mir",
                           pcap="S/w2.pcap", method="tcpdump")
        sim.run(until=sim.now + 60.0)
        row2 = w2.close(session2.stop())
        assert row2.ok
        assert row2.carry_in == row1.drops["in-flight"]
        assert row2.captured == row2.carry_in  # no new offers in window 2

    def test_mirror_deleted_mid_window_charged_to_fault(self):
        sim, switch, nic_port = build_world()
        session = CaptureSession(sim, nic_port, None)
        recorder = LedgerRecorder(switch, "S")
        session.start()
        window = recorder.open(mirrored_port="src", dest_port="mir",
                               pcap="S/fault.pcap", method="tcpdump")
        offer_load(sim, switch, 0.3, 20.0)
        sim.schedule_at(10.0, switch.delete_mirror, "src")
        sim.run(until=sim.now + 30.0)
        row = window.close(session.stop())
        assert row.ok
        assert row.drops["fault-window"] > 0
        # Roughly the second half of the window went un-cloned.
        assert row.drops["fault-window"] == pytest.approx(
            row.generated / 2, rel=0.2)

    def test_aborted_close_charges_in_flight_to_fault_window(self):
        sim, switch, nic_port = build_world()
        session = CaptureSession(sim, nic_port, None)
        recorder = LedgerRecorder(switch, "S")
        session.start()
        window = recorder.open(mirrored_port="src", dest_port="mir",
                               pcap="S/abort.pcap", method="tcpdump")
        for _ in range(5):
            switch.ports["src"].link.rx.offer(frame_to(MAC_B, MAC_A))
        sim.run(until=sim.now + 0.1)
        row = window.close(session.stop(), aborted=True)
        assert row.ok
        assert row.aborted
        assert row.drops["in-flight"] == 0
        assert row.drops["fault-window"] > 0

    def test_oversize_frames_never_enter_the_clone_population(self):
        sim, switch, nic_port = build_world()
        session = CaptureSession(sim, nic_port, None)
        recorder = LedgerRecorder(switch, "S")
        session.start()
        window = recorder.open(mirrored_port="src", dest_port="mir",
                               pcap="S/jumbo.pcap", method="tcpdump")
        switch.ports["src"].link.rx.offer(frame_to(MAC_B, MAC_A, size=20_000))
        switch.ports["src"].link.rx.offer(frame_to(MAC_B, MAC_A))
        sim.run(until=sim.now + 60.0)
        row = window.close(session.stop())
        assert row.ok
        assert row.drops["oversize"] == 1
        assert row.captured == 1

    def test_fpga_filtered_frames_accounted(self):
        from repro.capture.fpga import FpgaOffloadConfig
        row = run_sample(0.3, method=CaptureMethod.FPGA_DPDK,
                         check_congestion=False,
                         fpga_config=FpgaOffloadConfig(truncation=64,
                                                       sample_one_in=2))
        assert row.ok
        assert row.drops["filtered"] > 0
        assert row.captured + row.drops["filtered"] == row.generated

    def test_double_close_rejected(self):
        sim, switch, nic_port = build_world()
        session = CaptureSession(sim, nic_port, None)
        recorder = LedgerRecorder(switch, "S")
        session.start()
        window = recorder.open(mirrored_port="src", dest_port="mir")
        stats = session.stop()
        window.close(stats)
        with pytest.raises(RuntimeError):
            window.close(stats)


class TestPublication:
    def test_row_journaled_and_counted(self):
        with scoped(Observability.create()) as obs:
            row = run_sample(0.7)
            events = obs.journal.of_kind("ledger")
            assert len(events) == 1
            assert events[0].data["captured"] == row.captured
            assert events[0].data["drops"]["mirror-egress"] == \
                row.drops["mirror-egress"]
            assert events[0].data["conserved"] is True
            assert obs.registry.get("ledger.samples").value == 1
            assert obs.registry.get("ledger.generated").value == row.generated
            assert obs.registry.get(
                "ledger.dropped.mirror_egress").value == \
                row.drops["mirror-egress"]

    def test_event_round_trip(self):
        row = run_sample(0.7)
        rebuilt = SampleLedger.from_event(row.to_event())
        assert rebuilt.ok
        assert rebuilt.drops == row.drops
        assert rebuilt.generated == row.generated
        assert rebuilt.captured == row.captured
        assert rebuilt.verdict_overloaded == row.verdict_overloaded
        assert rebuilt.pcap == row.pcap

    def test_no_obs_still_returns_rows(self):
        # Ledger math is always on; obs only adds publication.
        row = run_sample(0.3)
        assert row.ok


class TestScorecard:
    def test_confusion_counts(self):
        card = CongestionScorecard()
        card.add(True, True)
        card.add(True, False)
        card.add(False, True)
        card.add(False, False)
        card.add(None, True)
        assert (card.tp, card.fp, card.fn, card.tn) == (1, 1, 1, 1)
        assert card.unanswerable == 1
        assert card.samples == 5
        assert card.answered == 4
        assert card.precision == 0.5
        assert card.recall == 0.5
        assert card.accuracy == 0.5

    def test_undefined_metrics_are_none(self):
        card = CongestionScorecard()
        card.add(False, False)
        assert card.precision is None
        assert card.recall is None
        assert "n/a" in card.describe()

    def test_merge(self):
        a = CongestionScorecard(tp=1, fp=2)
        b = CongestionScorecard(fn=3, tn=4, unanswerable=5)
        a.merge(b)
        assert (a.tp, a.fp, a.fn, a.tn, a.unanswerable) == (1, 2, 3, 4, 5)

    def test_dict_round_trip(self):
        card = CongestionScorecard(tp=2, fp=1, fn=1, tn=3, unanswerable=1)
        rebuilt = CongestionScorecard.from_dict(card.to_dict())
        assert rebuilt == card

    def test_from_ledgers_uses_ground_truth(self):
        rows = [run_sample(0.7), run_sample(0.3)]
        card = scorecard_from_ledgers(rows)
        assert card.tp == 1 and card.tn == 1
        assert card.fp == card.fn == 0
        assert card.precision == 1.0 and card.recall == 1.0


class TestAttachDigests:
    def test_matches_by_site_qualified_name(self, tmp_path):
        from repro.analysis.acap import digest_pcap
        sim, switch, nic_port = build_world()
        pcap = tmp_path / "S" / "sample.pcap"
        session = CaptureSession(sim, nic_port, pcap)
        recorder = LedgerRecorder(switch, "S")
        session.start()
        window = recorder.open(mirrored_port="src", dest_port="mir",
                               pcap="S/sample.pcap", method="tcpdump")
        offer_load(sim, switch, 0.3, 10.0)
        sim.run(until=sim.now + 30.0)
        row = window.close(session.stop())
        assert row.captured > 0
        acap = digest_pcap(pcap)
        assert attach_digests([row], [acap]) == 1
        assert row.digested == row.captured

    def test_unmatched_rows_left_alone(self):
        row = SampleLedger(pcap="S/never.pcap")
        assert attach_digests([row], []) == 0
        assert row.digested is None


def test_cause_taxonomy_is_closed():
    # Every cause renders at a known stage, and the drops dict of a
    # fresh row covers exactly the taxonomy.
    from repro.obs.ledger import STAGE_OF_CAUSE
    row = SampleLedger()
    assert set(row.drops) == set(CAUSES)
    assert set(CAUSES) <= set(STAGE_OF_CAUSE)
