"""Tests for flow classification and cross-sample aggregation."""

import pytest

from repro.analysis.acap import AcapRecord
from repro.analysis.flows import (
    FlowKey,
    aggregate_flows,
    classify_flows,
    flows_per_sample_counts,
)
from repro.packets.headers import TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN


def record(src="10.0.0.1", dst="10.0.0.2", sport=1000, dport=443,
           vlans=(100,), mpls=(16000,), proto=6, ts=0.0, size=1514,
           flags=TCP_ACK, ipv=4):
    return AcapRecord(
        timestamp=ts, wire_len=size, captured_len=200,
        stack=("eth", "vlan", "mpls", "ipv4", "tcp"),
        vlan_ids=tuple(vlans), mpls_labels=tuple(mpls), ip_version=ipv,
        src=src, dst=dst, proto=proto, sport=sport, dport=dport,
        tcp_flags=flags,
    )


class TestFlowKey:
    def test_direction_normalized(self):
        forward = FlowKey.from_record(record(src="10.0.0.1", dst="10.0.0.2",
                                             sport=1000, dport=443))
        reverse = FlowKey.from_record(record(src="10.0.0.2", dst="10.0.0.1",
                                             sport=443, dport=1000))
        assert forward == reverse

    def test_tags_distinguish_slices(self):
        """Same 10/8 five-tuple in different slices = different flows."""
        slice_a = FlowKey.from_record(record(vlans=(100,)))
        slice_b = FlowKey.from_record(record(vlans=(200,)))
        assert slice_a != slice_b

    def test_mpls_labels_distinguish(self):
        a = FlowKey.from_record(record(mpls=(16000,)))
        b = FlowKey.from_record(record(mpls=(17000,)))
        assert a != b

    def test_different_ports_differ(self):
        a = FlowKey.from_record(record(sport=1000))
        b = FlowKey.from_record(record(sport=1001))
        assert a != b


class TestClassify:
    def test_groups_by_flow(self):
        records = [record(ts=i * 0.1) for i in range(10)]
        records += [record(sport=2000, ts=0.5)]
        flows = classify_flows(records)
        assert len(flows) == 2
        sizes = sorted(s.frames for s in flows.values())
        assert sizes == [1, 10]

    def test_bidirectional_counted_once(self):
        records = [record(), record(src="10.0.0.2", dst="10.0.0.1",
                                    sport=443, dport=1000)]
        assert len(classify_flows(records)) == 1

    def test_non_ip_excluded(self):
        arp = AcapRecord(timestamp=0, wire_len=60, captured_len=60,
                         stack=("eth", "arp"))
        assert classify_flows([arp]) == {}

    def test_stats_accumulate(self):
        records = [record(ts=1.0, size=100, flags=TCP_SYN),
                   record(ts=2.0, size=1514),
                   record(ts=3.0, size=200, flags=TCP_FIN)]
        flows = classify_flows(records)
        stats = next(iter(flows.values()))
        assert stats.frames == 3
        assert stats.wire_bytes == 1814
        assert stats.duration == pytest.approx(2.0)
        assert stats.syn_seen and stats.fin_seen and not stats.rst_seen

    def test_rst_tracked(self):
        flows = classify_flows([record(flags=TCP_RST)])
        assert next(iter(flows.values())).rst_seen


class TestAggregate:
    def test_snippets_merge_across_samples(self):
        sample1 = classify_flows([record(ts=0.0), record(ts=1.0)])
        sample2 = classify_flows([record(ts=300.0)])
        merged = aggregate_flows([sample1, sample2])
        assert len(merged) == 1
        stats = next(iter(merged.values()))
        assert stats.frames == 3
        assert stats.samples == 2
        assert stats.duration == pytest.approx(300.0)

    def test_distinct_flows_stay_distinct(self):
        sample1 = classify_flows([record()])
        sample2 = classify_flows([record(vlans=(999,))])
        assert len(aggregate_flows([sample1, sample2])) == 2

    def test_merge_rejects_different_keys(self):
        a = next(iter(classify_flows([record()]).values()))
        b = next(iter(classify_flows([record(sport=9)]).values()))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_counts_per_sample(self):
        samples = [classify_flows([record()]),
                   classify_flows([record(), record(sport=2)]),
                   classify_flows([])]
        assert flows_per_sample_counts(samples) == [1, 2, 0]
