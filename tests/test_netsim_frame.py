"""Tests for the Frame dataclass."""

import pytest

from repro.netsim.frame import DEFAULT_HEAD_BYTES, Frame


class TestFrame:
    def test_basic_construction(self):
        f = Frame(wire_len=1514, head=b"\x01" * 256)
        assert f.wire_len == 1514
        assert len(f.head) == 256

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            Frame(wire_len=0, head=b"")

    def test_rejects_head_longer_than_wire(self):
        with pytest.raises(ValueError):
            Frame(wire_len=10, head=b"\x00" * 20)

    def test_frame_ids_unique(self):
        a = Frame(wire_len=60, head=b"\x00" * 60)
        b = Frame(wire_len=60, head=b"\x00" * 60)
        assert a.frame_id != b.frame_id

    def test_clone_gets_new_id_same_content(self):
        original = Frame(wire_len=100, head=b"\x07" * 80, flow_id=5, site="STAR")
        clone = original.clone()
        assert clone.frame_id != original.frame_id
        assert clone.head == original.head
        assert clone.flow_id == 5
        assert clone.site == "STAR"


class TestCapturedBytes:
    def test_truncation_below_head(self):
        f = Frame(wire_len=1514, head=bytes(range(200)))
        assert f.captured_bytes(64) == bytes(range(64))

    def test_exact_head(self):
        f = Frame(wire_len=1514, head=bytes(range(200)))
        assert f.captured_bytes(200) == bytes(range(200))

    def test_padding_beyond_head(self):
        f = Frame(wire_len=1514, head=bytes(range(100)))
        captured = f.captured_bytes(150)
        assert len(captured) == 150
        assert captured[:100] == bytes(range(100))
        assert captured[100:] == b"\x00" * 50

    def test_never_exceeds_wire_len(self):
        f = Frame(wire_len=80, head=bytes(range(80)))
        assert len(f.captured_bytes(500)) == 80

    def test_default_head_covers_deepest_stack_plus_truncation(self):
        # Paper: deepest stacks are 12 headers; captures truncate at 200 B.
        assert DEFAULT_HEAD_BYTES >= 200
