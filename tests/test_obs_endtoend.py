"""Acceptance tests for repro.obs: a seeded end-to-end run journals the
whole story -- spans for coordinator/instance/cycling/capture/analysis,
fault and breaker events -- and two same-seed runs produce byte-identical
journals even in different output directories."""

import pytest

from repro.analysis import AnalysisPipeline
from repro.core import (
    Coordinator,
    PatchworkConfig,
    RecoveryConfig,
    SamplingPlan,
)
from repro.obs import Observability, RunJournal, scoped, to_prometheus
from repro.telemetry import SNMPPoller
from repro.testbed import FederationBuilder, TestbedAPI
from repro.traffic.workloads import TrafficOrchestrator

SITES = ["STAR", "MICH", "UTAH"]


def run_once(tmp_path, seed):
    """One recovery-heavy occasion + analysis, fully observed."""
    federation = FederationBuilder(seed=42).build(site_names=SITES)
    api = TestbedAPI(federation)
    poller = SNMPPoller(federation, interval=30.0)
    poller.start()
    orchestrator = TrafficOrchestrator(federation, seed=7, scale=0.02)
    orchestrator.setup()
    for window in range(5):
        orchestrator.generate_window(window * 100.0, 100.0)
    config = PatchworkConfig(
        output_dir=tmp_path,
        plan=SamplingPlan(sample_duration=2, sample_interval=10,
                          samples_per_run=2, runs_per_cycle=1, cycles=2),
        desired_instances=1,
        # breaker_threshold=2 so the STAR outage visibly opens the
        # breaker (the journal must carry the transition).
        recovery=RecoveryConfig(enabled=True, breaker_threshold=2),
    )
    federation.faults.add_outage(0.0, 300.0, reason="incident",
                                 sites={"STAR"})
    with scoped(Observability.create(sim=federation.sim)) as obs:
        coordinator = Coordinator(api, config, poller=poller, seed=seed)
        bundle = coordinator.run_profile(crash_probability=0.01)
        pipeline = AnalysisPipeline(max_workers=1)
        pipeline.run(bundle.pcap_paths)
    return obs, bundle


class TestJournalDeterminism:
    @pytest.mark.parametrize("seed", [5, 17])
    def test_same_seed_byte_identical_journal(self, tmp_path, seed):
        obs_a, _ = run_once(tmp_path / "a", seed)
        obs_b, _ = run_once(tmp_path / "b", seed)
        text_a = obs_a.journal.to_jsonl()
        assert text_a  # non-trivial journal
        assert text_a == obs_b.journal.to_jsonl()
        assert to_prometheus(obs_a.registry, include_volatile=False) == \
            to_prometheus(obs_b.registry, include_volatile=False)

    def test_different_seeds_diverge(self, tmp_path):
        obs_a, _ = run_once(tmp_path / "a", 5)
        obs_b, _ = run_once(tmp_path / "b", 17)
        assert obs_a.journal.to_jsonl() != obs_b.journal.to_jsonl()


class TestJournalContents:
    @pytest.fixture(scope="class")
    def observed(self, tmp_path_factory):
        return run_once(tmp_path_factory.mktemp("obs-e2e"), 5)

    def test_expected_span_names(self, observed):
        obs, _ = observed
        names = {e.data["name"] for e in obs.journal.of_kind("span-open")}
        assert {"occasion", "instance", "cycling.select", "capture",
                "analysis.digest", "analysis.index",
                "analysis.analyze"} <= names

    def test_every_span_closes(self, observed):
        obs, _ = observed
        opened = {e.data["span"] for e in obs.journal.of_kind("span-open")}
        closed = {e.data["span"] for e in obs.journal.of_kind("span-close")}
        assert opened == closed

    def test_instance_spans_parent_under_occasion(self, observed):
        obs, _ = observed
        opens = obs.journal.of_kind("span-open")
        occasion_ids = {e.data["span"] for e in opens
                        if e.data["name"] == "occasion"}
        instance_parents = {e.data["parent"] for e in opens
                            if e.data["name"] == "instance"}
        assert instance_parents <= occasion_ids

    def test_fault_and_breaker_events_present(self, observed):
        obs, _ = observed
        kinds = obs.journal.kinds()
        assert kinds.get("fault", 0) > 0         # the STAR outage hits
        assert kinds.get("breaker", 0) > 0       # and opens the breaker
        assert kinds.get("retry", 0) > 0
        assert kinds.get("watchdog", 0) > 0
        assert kinds.get("log", 0) > 0
        assert kinds.get("recovery", 0) > 0
        assert kinds.get("pipeline", 0) > 0
        assert kinds.get("metrics", 0) > 0

    def test_metrics_snapshot_matches_registry(self, observed):
        obs, _ = observed
        snapshot = obs.journal.of_kind("metrics")[-1].data["metrics"]
        # Snapshot was taken before the analysis pipeline ran, so
        # compare only the keys it contains.
        live = obs.registry.snapshot(include_volatile=False)
        assert set(snapshot) <= set(live)
        assert snapshot["coordinator.occasions"]["value"] == 1

    def test_registry_reflects_run(self, observed):
        obs, bundle = observed
        registry = obs.registry
        assert registry.get("faults.injected_failures").value > 0
        assert registry.get("capture.sessions").value > 0
        # Every digested frame came out of a capture session (sessions
        # whose sample was dropped may have captured more).
        assert 0 < registry.get("digest.frames").value <= \
            registry.get("capture.frames_captured").value
        attempted = registry.get("allocator.attempted").value
        succeeded = registry.get("allocator.succeeded").value
        failed = registry.get("allocator.failed").value
        assert attempted == succeeded + failed
        hist = registry.get("allocator.latency_seconds")
        assert hist.count == succeeded

    def test_journal_round_trips_through_disk(self, observed, tmp_path):
        obs, _ = observed
        path = obs.journal.write(tmp_path / "journal.jsonl")
        loaded = RunJournal.read(path)
        assert loaded.to_jsonl() == obs.journal.to_jsonl()
