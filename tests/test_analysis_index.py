"""Tests for the acap index."""

import pytest

from repro.analysis.acap import AcapFile, AcapRecord, write_acap
from repro.analysis.index import AcapIndex


def acap(source, n=5, t0=0.0, protocols=("eth", "ipv4", "tcp")):
    records = [
        AcapRecord(timestamp=t0 + i, wire_len=1514, captured_len=200,
                   stack=tuple(protocols))
        for i in range(n)
    ]
    return AcapFile(source=source, records=records)


class TestBuild:
    def test_from_memory(self):
        index = AcapIndex.build_from_memory([
            acap("out/STAR/a.acap"), acap("out/MICH/b.acap", n=3)])
        assert len(index) == 2
        assert index.total_frames() == 8
        assert index.sites() == ["MICH", "STAR"]

    def test_from_disk(self, tmp_path):
        paths = []
        for site in ("STAR", "MICH"):
            a = acap(f"{site}.pcap")
            paths.append(write_acap(a, tmp_path / site / "c0.acap"))
        index = AcapIndex.build(paths)
        assert len(index) == 2
        assert set(index.sites()) == {"STAR", "MICH"}


class TestQueries:
    @pytest.fixture()
    def index(self):
        return AcapIndex.build_from_memory([
            acap("out/STAR/a.acap", n=5, t0=0.0),
            acap("out/STAR/b.acap", n=5, t0=100.0,
                 protocols=("eth", "ipv6", "udp", "dns")),
            acap("out/MICH/c.acap", n=2, t0=50.0),
        ])

    def test_for_site(self, index):
        assert len(index.for_site("STAR")) == 2
        assert len(index.for_site("NOWHERE")) == 0

    def test_with_protocol(self, index):
        assert len(index.with_protocol("dns")) == 1
        assert len(index.with_protocol("eth")) == 3

    def test_in_window(self, index):
        hits = index.in_window(90.0, 110.0)
        assert len(hits) == 1
        assert hits[0].start == 100.0

    def test_entry_duration(self, index):
        entry = index.for_site("MICH")[0]
        assert entry.duration == pytest.approx(1.0)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        index = AcapIndex.build_from_memory([
            acap("out/STAR/a.acap"), acap("out/MICH/b.acap")])
        path = index.write(tmp_path / "index.csv")
        loaded = AcapIndex.read(path)
        assert len(loaded) == 2
        assert loaded.sites() == index.sites()
        assert loaded.total_frames() == index.total_frames()
        assert loaded.with_protocol("tcp")
