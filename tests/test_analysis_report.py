"""Tests for the Process-step table builders."""

import pytest

from repro.analysis.acap import AcapRecord
from repro.analysis.flows import classify_flows
from repro.analysis.report import (
    aggregated_flow_size_table, flows_per_sample_table, frame_size_table,
    header_diversity_table, header_occurrence_table, ip_version_table,
    overall_frame_size_table, tcp_flag_table,
)
from repro.packets.headers import TCP_ACK, TCP_RST, TCP_SYN


def rec(size=1544, stack=("eth", "vlan", "mpls", "ipv4", "tcp"), ipv=4,
        src="10.0.0.1", sport=1000, flags=TCP_ACK, ts=0.0):
    return AcapRecord(timestamp=ts, wire_len=size, captured_len=200,
                      stack=tuple(stack), ip_version=ipv, src=src,
                      dst="10.0.0.2", proto=6, sport=sport, dport=443,
                      vlan_ids=(100,), tcp_flags=flags)


class TestFrameSizeTables:
    def test_per_site_rows_and_columns(self):
        table = frame_size_table({"S0": [rec(100), rec(1544)],
                                  "S1": [rec(9000)]})
        assert table.column("site") == ["S0", "S1"]
        assert "jumbo_fraction" in table.columns
        s1 = table.rows[1]
        assert s1[table.columns.index("jumbo_fraction")] == 1.0

    def test_overall_fractions_sum_to_one(self):
        table = overall_frame_size_table([rec(100)] * 3 + [rec(1544)])
        assert sum(table.column("fraction")) == pytest.approx(1.0)


class TestHeaderTables:
    def test_occurrence_sorted_descending(self):
        table = header_occurrence_table(
            [rec(), rec(stack=("eth", "ipv4", "udp"))])
        percents = table.column("percent_of_frames")
        assert percents == sorted(percents, reverse=True)

    def test_diversity_columns(self):
        table = header_diversity_table({"S0": [rec()]})
        assert table.columns == ["site", "distinct_headers",
                                 "max_stack_depth", "frames"]
        assert table.rows[0][1:] == [5, 5, 1]

    def test_ip_version_table(self):
        table = ip_version_table([rec(ipv=4), rec(ipv=6)])
        shares = dict(zip(table.column("family"), table.column("fraction")))
        assert shares["ipv4"] == 0.5 and shares["ipv6"] == 0.5


class TestFlowTables:
    def test_flows_per_sample_binning(self):
        table = flows_per_sample_table([0, 5, 50, 5000, 50000])
        counts = dict(zip(table.column("flows_bin"), table.column("samples")))
        assert counts["<=0"] == 1
        assert counts["1-10"] == 1
        assert counts["31-100"] == 1
        assert counts["3001-10000"] == 1
        assert counts[">20000"] == 1
        assert sum(counts.values()) == 5

    def test_aggregated_flow_sizes_by_decade(self):
        flows = classify_flows([rec(size=100), rec(sport=2, size=100_000)])
        table = aggregated_flow_size_table(flows)
        counts = dict(zip(table.column("size_decade_bytes"),
                          table.column("flows")))
        assert counts["1e2-1e3"] == 1
        assert counts["1e5-1e6"] == 1

    def test_tcp_flag_table(self):
        flows = classify_flows([
            rec(flags=TCP_SYN), rec(sport=2, flags=TCP_RST),
            rec(sport=3, flags=TCP_ACK),
        ])
        table = tcp_flag_table(flows)
        counts = dict(zip(table.column("flag"), table.column("flows")))
        assert counts["syn"] == 1
        assert counts["rst"] == 1
        assert counts["fin"] == 0

    def test_tcp_flag_table_empty(self):
        table = tcp_flag_table({})
        assert all(row[1] == 0 for row in table.rows)
