"""Tests for workload profiles and the traffic orchestrator."""

import numpy as np
import pytest

from repro.testbed import FederationBuilder
from repro.traffic.workloads import (
    WORKLOAD_PROFILES,
    TrafficOrchestrator,
    assign_site_profiles,
)


class TestProfiles:
    def test_all_personalities_exist(self):
        assert {"bulk", "jumbo-bulk", "mixed", "chatty", "quiet"} == set(WORKLOAD_PROFILES)

    def test_pick_app_respects_weights(self):
        rng = np.random.default_rng(0)
        profile = WORKLOAD_PROFILES["bulk"]
        picks = [profile.pick_app(rng).name for _ in range(300)]
        assert picks.count("iperf-tcp") > 200

    def test_pick_encap_returns_kind(self):
        rng = np.random.default_rng(0)
        kind = WORKLOAD_PROFILES["mixed"].pick_encap(rng)
        assert kind in WORKLOAD_PROFILES["mixed"].encap_weights

    def test_assignment_deterministic(self):
        sites = ["A", "B", "C", "D", "E"]
        assert ([p.name for p in assign_site_profiles(sites, seed=7).values()]
                == [p.name for p in assign_site_profiles(sites, seed=7).values()])

    def test_assignment_covers_all_sites(self):
        sites = [f"S{i}" for i in range(30)]
        assigned = assign_site_profiles(sites)
        assert set(assigned) == set(sites)

    def test_quiet_sites_much_quieter_than_chatty(self):
        assert (WORKLOAD_PROFILES["quiet"].flow_rate_per_s
                < WORKLOAD_PROFILES["chatty"].flow_rate_per_s / 100)


class TestOrchestrator:
    @pytest.fixture()
    def orchestrator(self):
        federation = FederationBuilder(seed=42).build(
            site_names=["STAR", "MICH", "UTAH"])
        return TrafficOrchestrator(federation, seed=7, scale=0.05), federation

    def test_setup_creates_endpoints(self, orchestrator):
        orch, _fed = orchestrator
        orch.setup()
        assert len(orch.registry) > 0
        for site in ("STAR", "MICH", "UTAH"):
            assert len(orch.registry.at_site(site)) >= 2

    def test_setup_idempotent(self, orchestrator):
        orch, _fed = orchestrator
        orch.setup()
        count = len(orch.registry)
        orch.setup()
        assert len(orch.registry) == count

    def test_generate_window_creates_flows(self, orchestrator):
        orch, fed = orchestrator
        flows = orch.generate_window(0.0, 30.0)
        assert len(flows) > 0
        fed.sim.run(until=31.0)
        assert any(f.frames_sent > 0 for f in flows)

    def test_generate_restricted_to_sites(self, orchestrator):
        orch, _fed = orchestrator
        flows = orch.generate_window(0.0, 10.0, sites=["STAR"])
        assert all(f.src.site == "STAR" for f in flows)

    def test_traffic_reaches_switches(self, orchestrator):
        orch, fed = orchestrator
        orch.generate_window(0.0, 10.0)
        fed.sim.run(until=11.0)
        total_rx = sum(
            port.counters()["rx_frames"]
            for site in fed.sites.values()
            for port in site.switch.downlinks()
        )
        assert total_rx > 0

    def test_remote_flows_cross_uplinks(self, orchestrator):
        orch, fed = orchestrator
        orch.generate_window(0.0, 20.0)
        fed.sim.run(until=21.0)
        uplink_frames = sum(
            port.counters()["tx_frames"]
            for site in fed.sites.values()
            for port in site.switch.uplinks()
        )
        assert uplink_frames > 0

    def test_scale_reduces_frame_count(self):
        def run(scale):
            fed = FederationBuilder(seed=42).build(site_names=["STAR", "MICH"])
            orch = TrafficOrchestrator(fed, seed=7, scale=scale)
            orch.generate_window(0.0, 10.0)
            fed.sim.run(until=11.0)
            return sum(port.counters()["rx_frames"]
                       for site in fed.sites.values()
                       for port in site.switch.downlinks())
        assert run(0.02) < run(0.3)

    def test_rejects_bad_scale(self):
        fed = FederationBuilder(seed=42).build(site_names=["STAR", "MICH"])
        with pytest.raises(ValueError):
            TrafficOrchestrator(fed, scale=0.0)
