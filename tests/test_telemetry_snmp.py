"""Tests for the SNMP poller."""

import pytest

from repro.telemetry.snmp import POLLED_COUNTERS, SNMPPoller
from repro.testbed import FederationBuilder


@pytest.fixture()
def federation():
    return FederationBuilder(seed=42).build(site_names=["STAR", "MICH"])


class TestPolling:
    def test_polls_on_interval(self, federation):
        poller = SNMPPoller(federation, interval=300.0)
        poller.start()
        federation.sim.run(until=1000.0)
        # Polls at t=0, 300, 600, 900.
        assert poller.polls_completed == 4

    def test_all_ports_and_counters_polled(self, federation):
        poller = SNMPPoller(federation, interval=60.0)
        poller.poll_now()
        star_ports = set(federation.site("STAR").switch.ports)
        assert set(poller.store.ports("STAR")) == star_ports
        for counter in POLLED_COUNTERS:
            assert poller.store.latest("STAR", next(iter(star_ports)), counter)

    def test_stop_stops(self, federation):
        poller = SNMPPoller(federation, interval=10.0)
        poller.start()
        federation.sim.run(until=25.0)
        poller.stop()
        count = poller.polls_completed
        federation.sim.run(until=100.0)
        assert poller.polls_completed == count

    def test_double_start_rejected(self, federation):
        poller = SNMPPoller(federation)
        poller.start()
        with pytest.raises(RuntimeError):
            poller.start()

    def test_stop_idempotent(self, federation):
        poller = SNMPPoller(federation)
        poller.stop()
        poller.stop()

    def test_bad_interval(self, federation):
        with pytest.raises(ValueError):
            SNMPPoller(federation, interval=0)

    def test_counters_reflect_traffic(self, federation):
        """Polled values actually track dataplane bytes."""
        from repro.netsim.frame import Frame
        poller = SNMPPoller(federation, interval=10.0)
        poller.start()
        site = federation.site("STAR")
        port = site.switch.downlinks()[0]
        # Inject frames into the port's rx channel (device -> switch).
        for _ in range(5):
            port.link.rx.offer(Frame(wire_len=1000, head=b"\x00" * 60))
        federation.sim.run(until=11.0)
        latest = poller.store.latest("STAR", port.port_id, "rx_bytes")
        assert latest.value == 5000
