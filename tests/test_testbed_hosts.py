"""Tests for workers and VMs."""

import pytest

from repro.testbed.errors import InsufficientResourcesError
from repro.testbed.hosts import Worker
from repro.testbed.nic import DedicatedNIC


class TestWorker:
    def test_vm_reserves_capacity(self):
        worker = Worker("w0", "STAR", cores=8, ram_gb=32, disk_gb=100)
        vm = worker.create_vm("vm1", cores=2, ram_gb=8, disk_gb=50, slice_name="s")
        assert worker.free.cores == 6
        assert worker.free.ram_gb == 24
        assert vm.site_name == "STAR"

    def test_destroy_returns_capacity(self):
        worker = Worker("w0", "STAR", cores=8, ram_gb=32, disk_gb=100)
        vm = worker.create_vm("vm1", 2, 8, 50, "s")
        worker.destroy_vm(vm)
        assert worker.free == worker.capacity
        assert worker.vms == {}

    def test_overcommit_rejected_with_dimension(self):
        worker = Worker("w0", "STAR", cores=2, ram_gb=8, disk_gb=10)
        with pytest.raises(InsufficientResourcesError) as excinfo:
            worker.create_vm("vm1", cores=4, ram_gb=1, disk_gb=1, slice_name="s")
        assert excinfo.value.resource == "cores"
        assert excinfo.value.requested == 4

    def test_can_host(self):
        worker = Worker("w0", "STAR", cores=4, ram_gb=16, disk_gb=100)
        assert worker.can_host(4, 16, 100)
        assert not worker.can_host(5, 1, 1)

    def test_destroy_unknown_vm_raises(self):
        w1 = Worker("w1", "STAR")
        w2 = Worker("w2", "STAR")
        vm = w1.create_vm("vm1", 1, 1, 1, "s")
        with pytest.raises(KeyError):
            w2.destroy_vm(vm)

    def test_nic_installation(self):
        worker = Worker("w0", "STAR")
        nic = DedicatedNIC("dn0")
        worker.add_nic(nic)
        assert worker.nics == [nic]


class TestVM:
    def test_grant_port(self):
        worker = Worker("w0", "STAR")
        vm = worker.create_vm("vm1", 2, 8, 100, "s")
        nic = DedicatedNIC("dn0")
        vm.grant_port(nic.ports[0])
        vm.grant_port(nic.ports[1])
        assert len(vm.nic_ports) == 2

    def test_multiple_vms_per_worker(self):
        worker = Worker("w0", "STAR", cores=8, ram_gb=64, disk_gb=1000)
        worker.create_vm("a", 2, 8, 100, "s1")
        worker.create_vm("b", 2, 8, 100, "s2")
        assert set(worker.vms) == {"a", "b"}
        assert worker.free.cores == 4
