"""Tests for frame composition (chaining fixes, sizing, checksums)."""

import pytest

from repro.packets.builder import FrameBuilder, FrameSpec, MIN_FRAME_SIZE
from repro.packets.headers import (
    ARP, Ethernet, ICMP, IPv4, IPv6, MPLS, Payload, PseudoWireControlWord,
    TCP, TLSRecord, UDP, VLAN, EtherType, IPProto,
)

E1 = "02:00:00:00:00:01"
E2 = "02:00:00:00:00:02"


def build(stack, target=None):
    return FrameBuilder().build(FrameSpec(stack, target_size=target))


class TestChaining:
    def test_ethernet_announces_vlan(self):
        frame = build([Ethernet(E1, E2), VLAN(5), IPv4("10.0.0.1", "10.0.0.2"),
                       Payload(100)])
        _f, n, ethertype = Ethernet.parse(memoryview(frame))
        assert ethertype == EtherType.VLAN

    def test_vlan_announces_mpls(self):
        frame = build([Ethernet(E1, E2), VLAN(5), MPLS(16), IPv4("10.0.0.1", "10.0.0.2"),
                       Payload(100)])
        _f, n, _ = Ethernet.parse(memoryview(frame))
        _f2, _n2, inner = VLAN.parse(memoryview(frame)[n:])
        assert inner == EtherType.MPLS_UNICAST

    def test_mpls_bottom_bits(self):
        frame = build([Ethernet(E1, E2), MPLS(1), MPLS(2),
                       IPv4("10.0.0.1", "10.0.0.2"), Payload(40)])
        view = memoryview(frame)[14:]
        _f, n, bottom1 = MPLS.parse(view)
        assert bottom1 is False
        _f2, _n2, bottom2 = MPLS.parse(view[n:])
        assert bottom2 is True

    def test_ip_proto_follows_transport(self):
        for transport, proto in ((TCP(1, 2), IPProto.TCP),
                                 (UDP(1, 2), IPProto.UDP),
                                 (ICMP(), IPProto.ICMP)):
            frame = build([Ethernet(E1, E2),
                           IPv4("10.0.0.1", "10.0.0.2", proto=99),
                           transport, Payload(50)])
            _f, _n, parsed = IPv4.parse(memoryview(frame)[14:])
            assert parsed == proto

    def test_ethernet_announces_ipv6(self):
        frame = build([Ethernet(E1, E2), IPv6("fd00::1", "fd00::2"),
                       UDP(1, 2), Payload(30)])
        _f, _n, ethertype = Ethernet.parse(memoryview(frame))
        assert ethertype == EtherType.IPV6

    def test_ethernet_announces_arp(self):
        frame = build([Ethernet(E1, E2), ARP(E1, "10.0.0.1")])
        _f, _n, ethertype = Ethernet.parse(memoryview(frame))
        assert ethertype == EtherType.ARP

    def test_spec_not_mutated(self):
        eth = Ethernet(E1, E2, ethertype=EtherType.IPV4)
        build([eth, VLAN(5), IPv4("10.0.0.1", "10.0.0.2"), Payload(60)])
        assert eth.ethertype == EtherType.IPV4  # original untouched


class TestSizing:
    def test_exact_target_size(self):
        for target in (128, 512, 1514, 1544, 8986):
            frame = build([Ethernet(E1, E2), VLAN(3), MPLS(9),
                           IPv4("10.0.0.1", "10.0.0.2"), TCP(1, 2), Payload(0)],
                          target=target)
            assert len(frame) == target

    def test_minimum_enforced(self):
        frame = build([Ethernet(E1, E2), IPv4("10.0.0.1", "10.0.0.2"),
                       TCP(1, 2), Payload(0)], target=10)
        assert len(frame) == MIN_FRAME_SIZE

    def test_no_payload_no_resize(self):
        frame = build([Ethernet(E1, E2), ARP(E1, "10.0.0.1")], target=500)
        # ARP stack has no Payload to stretch; stays at its natural size.
        assert len(frame) == MIN_FRAME_SIZE

    def test_requires_ethernet_first(self):
        with pytest.raises(ValueError):
            build([IPv4("10.0.0.1", "10.0.0.2"), Payload(10)])

    def test_rejects_empty_stack(self):
        with pytest.raises(ValueError):
            build([])


class TestPseudowireStack:
    def test_deep_stack_builds_and_reparses(self):
        frame = build([
            Ethernet(E1, E2), VLAN(100), MPLS(16), MPLS(17),
            PseudoWireControlWord(), Ethernet(E1, E2),
            IPv4("10.0.0.1", "10.0.0.2"), TCP(443, 50000), TLSRecord(),
            Payload(0),
        ], target=1544)
        assert len(frame) == 1544
        view = memoryview(frame)
        _f, n, et = Ethernet.parse(view); assert et == EtherType.VLAN
        _f, n2, et = VLAN.parse(view[n:]); assert et == EtherType.MPLS_UNICAST
        off = n + n2
        _f, n3, bottom = MPLS.parse(view[off:]); assert not bottom
        off += n3
        _f, n4, bottom = MPLS.parse(view[off:]); assert bottom
        off += n4
        assert view[off] >> 4 == 0  # PW control word nibble

    def test_tcp_checksum_uses_inner_ip(self):
        from repro.packets.checksum import internet_checksum, pseudo_header_v4
        from repro.packets import headers as hdr
        frame = build([
            Ethernet(E1, E2), VLAN(100), MPLS(16), PseudoWireControlWord(),
            Ethernet(E1, E2), IPv4("10.0.0.9", "10.0.0.8"), TCP(5201, 40000),
            Payload(64),
        ])
        # Locate the inner TCP segment: outer 14+4+4+4 + inner eth 14 + ip 20.
        ip_off = 14 + 4 + 4 + 4 + 14
        tcp_off = ip_off + 20
        segment = frame[tcp_off:]
        pseudo = pseudo_header_v4(
            hdr.ipv4_bytes("10.0.0.9"), hdr.ipv4_bytes("10.0.0.8"),
            hdr.IPProto.TCP, len(segment))
        assert internet_checksum(pseudo + segment) == 0
