"""Tests for the endpoint registry."""

import pytest

from repro.packets.headers import mac_bytes
from repro.testbed import FederationBuilder
from repro.traffic.endpoints import EndpointRegistry


@pytest.fixture()
def federation():
    return FederationBuilder(seed=42).build(site_names=["STAR", "MICH"])


class TestRegistry:
    def test_unique_addresses(self, federation):
        registry = EndpointRegistry(federation)
        endpoints = [registry.create("STAR") for _ in range(5)]
        assert len({e.mac for e in endpoints}) == 5
        assert len({e.ipv4 for e in endpoints}) == 5
        assert len({e.ipv6 for e in endpoints}) == 5

    def test_private_address_spaces(self, federation):
        registry = EndpointRegistry(federation)
        endpoint = registry.create("STAR")
        assert endpoint.ipv4.startswith("10.")
        assert endpoint.ipv6.startswith("fd00::")
        assert endpoint.mac.startswith("02:e0:")

    def test_mac_registered_locally_and_remotely(self, federation):
        registry = EndpointRegistry(federation)
        endpoint = registry.create("STAR")
        raw = mac_bytes(endpoint.mac)
        star = federation.site("STAR").switch
        mich = federation.site("MICH").switch
        assert raw in star.mac_table
        # Remote sites route toward STAR via an uplink.
        assert mich.mac_table[raw] in {p.port_id for p in mich.uplinks()}

    def test_round_robin_across_shared_nics(self, federation):
        registry = EndpointRegistry(federation)
        site = federation.site("STAR")
        n = len(site.shared_nics)
        endpoints = [registry.create("STAR") for _ in range(2 * n)]
        used_ports = {e.nic_port.name for e in endpoints}
        assert len(used_ports) == n  # every shared NIC carries endpoints

    def test_vf_accounting(self, federation):
        registry = EndpointRegistry(federation)
        site = federation.site("STAR")
        before = sum(nic.vfs_in_use for nic in site.shared_nics)
        registry.create("STAR")
        after = sum(nic.vfs_in_use for nic in site.shared_nics)
        assert after == before + 1

    def test_at_site(self, federation):
        registry = EndpointRegistry(federation)
        registry.create("STAR")
        registry.create("MICH")
        registry.create("STAR")
        assert len(registry.at_site("STAR")) == 2
        assert len(registry.at_site("MICH")) == 1
        assert registry.at_site("NOWHERE") == []
        assert len(registry) == 3

    def test_explicit_nic_port(self, federation):
        registry = EndpointRegistry(federation)
        site = federation.site("STAR")
        port = site.dedicated_nics[0].ports[0]
        endpoint = registry.create("STAR", nic_port=port)
        assert endpoint.nic_port is port

    def test_send_through_endpoint(self, federation):
        from repro.netsim.frame import Frame
        registry = EndpointRegistry(federation)
        a = registry.create("STAR")
        b = registry.create("STAR")
        got = []
        b.nic_port.receive(got.append)
        head = (mac_bytes(b.mac) + mac_bytes(a.mac) + b"\x08\x00"
                + b"\x00" * 46)
        assert a.send(Frame(wire_len=100, head=head))
        federation.sim.run()
        assert len(got) == 1
