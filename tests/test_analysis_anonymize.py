"""Tests for the prefix-preserving anonymizer."""


import pytest

from repro.analysis.anonymize import Anonymizer
from repro.analysis.dissect import Dissector
from repro.packets.builder import FrameBuilder, FrameSpec
from repro.packets.headers import (
    Ethernet, IPv4, IPv6, MPLS, Payload, PseudoWireControlWord, TCP, UDP, VLAN,
    ipv4_bytes,
)

E1, E2 = "02:00:00:00:00:01", "02:00:00:00:00:02"


def common_prefix_bits(a: int, b: int, width: int = 32) -> int:
    for i in range(width):
        mask = 1 << (width - 1 - i)
        if (a & mask) != (b & mask):
            return i
    return width


class TestIPv4Permutation:
    def test_deterministic(self):
        anon = Anonymizer(key=b"k1")
        addr = int.from_bytes(ipv4_bytes("10.1.2.3"), "big")
        assert anon.anonymize_ipv4_int(addr) == Anonymizer(key=b"k1").anonymize_ipv4_int(addr)

    def test_key_changes_mapping(self):
        addr = int.from_bytes(ipv4_bytes("10.1.2.3"), "big")
        a = Anonymizer(key=b"k1").anonymize_ipv4_int(addr)
        b = Anonymizer(key=b"k2").anonymize_ipv4_int(addr)
        assert a != b

    def test_injective_sample(self):
        anon = Anonymizer()
        inputs = [int.from_bytes(ipv4_bytes(f"10.0.{i}.{j}"), "big")
                  for i in range(8) for j in range(8)]
        outputs = [anon.anonymize_ipv4_int(a) for a in inputs]
        assert len(set(outputs)) == len(inputs)

    def test_prefix_preserving(self):
        """Addresses sharing a k-bit prefix map to outputs sharing
        exactly a k-bit prefix (the Crypto-PAn property)."""
        anon = Anonymizer()
        pairs = [("10.1.2.3", "10.1.2.77"),    # shares /25+
                 ("10.1.2.3", "10.1.9.1"),     # shares /20
                 ("10.1.2.3", "192.168.0.1")]  # shares little
        for a_text, b_text in pairs:
            a = int.from_bytes(ipv4_bytes(a_text), "big")
            b = int.from_bytes(ipv4_bytes(b_text), "big")
            in_prefix = common_prefix_bits(a, b)
            out_prefix = common_prefix_bits(anon.anonymize_ipv4_int(a),
                                            anon.anonymize_ipv4_int(b))
            assert out_prefix == in_prefix

    def test_anonymize_changes_address(self):
        anon = Anonymizer()
        raw = ipv4_bytes("10.1.2.3")
        assert anon.anonymize_ipv4(raw) != raw


class TestMacAndV6:
    def test_mac_is_locally_administered(self):
        anon = Anonymizer()
        out = anon.anonymize_mac(b"\xaa\xbb\xcc\xdd\xee\xff")
        assert out[0] & 0x02  # locally administered
        assert not out[0] & 0x01  # unicast

    def test_mac_deterministic(self):
        a = Anonymizer(key=b"x").anonymize_mac(b"\x02\x00\x00\x00\x00\x01")
        b = Anonymizer(key=b"x").anonymize_mac(b"\x02\x00\x00\x00\x00\x01")
        assert a == b

    def test_ipv6_prefix_preserving_groups(self):
        anon = Anonymizer()
        a = anon.anonymize_ipv6(bytes.fromhex("fd00" + "00" * 12 + "0001"))
        b = anon.anonymize_ipv6(bytes.fromhex("fd00" + "00" * 12 + "0002"))
        # First group identical input -> identical output.
        assert a[:2] == b[:2]
        assert a[14:] != b[14:]

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            Anonymizer(key=b"")


class TestFrameTransform:
    def build(self, stack, target=None):
        return FrameBuilder().build(FrameSpec(stack, target_size=target))

    def test_simple_frame_addresses_rewritten(self):
        frame = self.build([Ethernet(E1, E2), VLAN(5),
                            IPv4("10.1.2.3", "10.4.5.6"), TCP(1, 2),
                            Payload(50)])
        out = Anonymizer().transform(frame)
        assert len(out) == len(frame)
        dissected = Dissector().dissect(out)
        ipv4 = dissected.first("ipv4")
        assert ipv4.fields["src"] not in ("10.1.2.3", "10.4.5.6")
        eth = dissected.first("eth")
        assert eth.fields["src"] != E1

    def test_structure_preserved(self):
        frame = self.build([Ethernet(E1, E2), VLAN(5), MPLS(16), MPLS(17),
                            PseudoWireControlWord(), Ethernet(E1, E2),
                            IPv4("10.1.2.3", "10.4.5.6"), TCP(1, 443),
                            Payload(64)])
        out = Anonymizer().transform(frame)
        original = Dissector().dissect(frame)
        transformed = Dissector().dissect(out)
        assert transformed.names == original.names

    def test_inner_ethernet_also_anonymized(self):
        frame = self.build([Ethernet(E1, E2), VLAN(5), MPLS(16),
                            PseudoWireControlWord(), Ethernet(E1, E2),
                            IPv4("10.1.2.3", "10.4.5.6"), UDP(1, 2),
                            Payload(20)])
        out = Anonymizer().transform(frame)
        dissected = Dissector().dissect(out)
        inner_eth = dissected.all("eth")[1]
        assert inner_eth.fields["src"] != E1

    def test_ipv6_frame(self):
        frame = self.build([Ethernet(E1, E2), IPv6("fd00::1", "fd00::2"),
                            UDP(1, 2), Payload(30)])
        out = Anonymizer().transform(frame)
        dissected = Dissector().dissect(out)
        assert dissected.first("ipv6").fields["src"] != "fd00:0:0:0:0:0:0:1"

    def test_ports_and_payload_untouched(self):
        frame = self.build([Ethernet(E1, E2), IPv4("10.1.2.3", "10.4.5.6"),
                            TCP(12345, 443), Payload(40, fill=0x7E)])
        out = Anonymizer().transform(frame)
        dissected = Dissector().dissect(out)
        tcp = dissected.first("tcp")
        assert (tcp.fields["sport"], tcp.fields["dport"]) == (12345, 443)
        assert out[-10:] == frame[-10:]  # payload bytes intact

    def test_consistent_across_frames(self):
        """The same host maps to the same pseudonym across captures,
        so flow aggregation still works post-anonymization."""
        anon = Anonymizer()
        frame1 = self.build([Ethernet(E1, E2), IPv4("10.1.2.3", "10.4.5.6"),
                             TCP(1, 2), Payload(10)])
        frame2 = self.build([Ethernet(E1, E2), IPv4("10.1.2.3", "10.9.9.9"),
                             TCP(3, 4), Payload(10)])
        src1 = Dissector().dissect(anon.transform(frame1)).first("ipv4").fields["src"]
        src2 = Dissector().dissect(anon.transform(frame2)).first("ipv4").fields["src"]
        assert src1 == src2

    def test_truncated_frame_does_not_crash(self):
        frame = self.build([Ethernet(E1, E2), IPv4("10.1.2.3", "10.4.5.6"),
                            TCP(1, 2), Payload(50)])
        out = Anonymizer().transform(frame[:20])
        assert len(out) == 20
