"""Tests for the protocol dissectors."""


from repro.analysis.dissect import Dissector
from repro.packets.builder import FrameBuilder, FrameSpec
from repro.packets.headers import (
    ARP, DNSHeader, Ethernet, HTTPPayload, ICMP, IPv4, IPv6, MPLS, NTPPayload,
    Payload, PseudoWireControlWord, SSHBanner, TCP, TLSRecord, UDP, VLAN,
)

E1, E2 = "02:00:00:00:00:01", "02:00:00:00:00:02"


def build(stack, target=None):
    return FrameBuilder().build(FrameSpec(stack, target_size=target))


def dissect(stack, target=None, snaplen=None):
    frame = build(stack, target)
    if snaplen is not None:
        frame = frame[:snaplen]
    return Dissector().dissect(frame)


class TestBasicStacks:
    def test_plain_tcp(self):
        result = dissect([Ethernet(E1, E2), IPv4("10.0.0.1", "10.0.0.2"),
                          TCP(1234, 80), Payload(100)])
        assert result.names[:3] == ("eth", "ipv4", "tcp")
        assert result.names[-1] in ("http", "data")

    def test_vlan_mpls(self):
        result = dissect([Ethernet(E1, E2), VLAN(100), MPLS(16),
                          IPv4("10.0.0.1", "10.0.0.2"), TCP(1, 2), Payload(50)])
        assert result.names[:5] == ("eth", "vlan", "mpls", "ipv4", "tcp")

    def test_mpls_stack_of_three(self):
        result = dissect([Ethernet(E1, E2), MPLS(1), MPLS(2), MPLS(3),
                          IPv4("10.0.0.1", "10.0.0.2"), UDP(1, 2), Payload(20)])
        assert result.names.count("mpls") == 3

    def test_pseudowire_full_stack(self):
        """The paper's example: Eth/VLAN/MPLS/MPLS/PW/Eth/IPv4/TCP/TLS."""
        result = dissect([
            Ethernet(E1, E2), VLAN(100), MPLS(16), MPLS(17),
            PseudoWireControlWord(), Ethernet(E1, E2),
            IPv4("10.0.0.1", "10.0.0.2"), TCP(50000, 443), TLSRecord(),
            Payload(200),
        ], target=1544)
        assert result.names[:9] == ("eth", "vlan", "mpls", "mpls", "pw",
                                    "eth", "ipv4", "tcp", "tls")
        assert result.depth >= 9

    def test_ipv6_ssh(self):
        """The paper's second example: .../IPv6/SSH."""
        result = dissect([
            Ethernet(E1, E2), VLAN(5), MPLS(7), PseudoWireControlWord(),
            Ethernet(E1, E2), IPv6("fd00::1", "fd00::2"), TCP(50000, 22),
            SSHBanner(), Payload(0),
        ])
        assert "ipv6" in result.names
        assert "ssh" in result.names

    def test_arp(self):
        result = dissect([Ethernet(E1, E2), ARP(E1, "10.0.0.1")])
        assert result.names[0:2] == ("eth", "arp")

    def test_icmp(self):
        result = dissect([Ethernet(E1, E2), IPv4("10.0.0.1", "10.0.0.2"),
                          ICMP(), Payload(56)])
        assert "icmp" in result.names


class TestApplicationClassification:
    def test_tls_by_port_443(self):
        result = dissect([Ethernet(E1, E2), IPv4("10.0.0.1", "10.0.0.2"),
                          TCP(50000, 443), TLSRecord(), Payload(64)])
        assert "tls" in result.names

    def test_tls_reverse_direction(self):
        # Server -> client: the *source* port is 443.
        result = dissect([Ethernet(E1, E2), IPv4("10.0.0.2", "10.0.0.1"),
                          TCP(443, 50000), TLSRecord(), Payload(64)])
        assert "tls" in result.names

    def test_dns_over_udp(self):
        result = dissect([Ethernet(E1, E2), IPv4("10.0.0.1", "10.0.0.2"),
                          UDP(40000, 53), DNSHeader()])
        assert "dns" in result.names

    def test_ntp(self):
        result = dissect([Ethernet(E1, E2), IPv4("10.0.0.1", "10.0.0.2"),
                          UDP(40000, 123), NTPPayload()])
        assert "ntp" in result.names

    def test_http(self):
        result = dissect([Ethernet(E1, E2), IPv4("10.0.0.1", "10.0.0.2"),
                          TCP(40000, 80), HTTPPayload()])
        assert "http" in result.names

    def test_iperf_labelled_by_port(self):
        result = dissect([Ethernet(E1, E2), IPv4("10.0.0.1", "10.0.0.2"),
                          TCP(40000, 5201), Payload(1000)], target=1514)
        assert "iperf" in result.names

    def test_port_match_with_wrong_content_falls_back(self):
        # Port 443 but the payload is not a TLS record -> generic data.
        result = dissect([Ethernet(E1, E2), IPv4("10.0.0.1", "10.0.0.2"),
                          TCP(50000, 443), Payload(64, fill=0x00)])
        assert "tls" not in result.names

    def test_unknown_port_is_data(self):
        result = dissect([Ethernet(E1, E2), IPv4("10.0.0.1", "10.0.0.2"),
                          TCP(40000, 40001), Payload(100)])
        assert result.names[-1] == "data"


class TestRobustness:
    def test_truncated_frame_flagged(self):
        frame = build([Ethernet(E1, E2), VLAN(5), MPLS(7),
                       IPv4("10.0.0.1", "10.0.0.2"), TCP(1, 2), Payload(100)])
        result = Dissector().dissect(frame[:30])  # cut inside IPv4
        assert result.truncated
        assert "eth" in result.names and "vlan" in result.names

    def test_200B_snaplen_keeps_full_stack(self):
        """The paper's 200 B truncation preserves the header stack."""
        result = dissect([
            Ethernet(E1, E2), VLAN(100), MPLS(16), MPLS(17),
            PseudoWireControlWord(), Ethernet(E1, E2),
            IPv4("10.0.0.1", "10.0.0.2"), TCP(50000, 443), TLSRecord(),
            Payload(0),
        ], target=1544, snaplen=200)
        assert not result.truncated or "tls" in result.names
        assert ("eth", "vlan", "mpls", "mpls", "pw", "eth", "ipv4",
                "tcp") == result.names[:8]

    def test_garbage_does_not_crash(self):
        result = Dissector().dissect(b"\xde\xad\xbe\xef" * 20)
        assert result.depth >= 1  # at least the Ethernet attempt

    def test_empty_frame(self):
        result = Dissector().dissect(b"")
        assert result.truncated

    def test_min_frame_padding_not_data(self):
        # Eth+IPv4+TCP is 54 bytes; the builder zero-pads to the 60-byte
        # Ethernet minimum, and that padding must not read as payload.
        from repro.packets.headers import TCP_ACK
        result = dissect([Ethernet(E1, E2), IPv4("10.0.0.1", "10.0.0.2"),
                          TCP(1, 2, flags=TCP_ACK)])
        assert "data" not in result.names
        assert "padding" in result.names


class TestFieldExtraction:
    def test_fields_available(self):
        result = dissect([Ethernet(E1, E2), VLAN(301), MPLS(17000),
                          IPv4("10.1.2.3", "10.4.5.6"), TCP(50000, 443),
                          TLSRecord(), Payload(10)])
        assert result.first("vlan").fields["vid"] == 301
        assert result.first("mpls").fields["label"] == 17000
        assert result.first("ipv4").fields["src"] == "10.1.2.3"
        assert result.first("tcp").fields["dport"] == 443

    def test_all_collects_repeats(self):
        result = dissect([Ethernet(E1, E2), MPLS(1), MPLS(2),
                          IPv4("10.0.0.1", "10.0.0.2"), UDP(1, 2), Payload(8)])
        labels = [h.fields["label"] for h in result.all("mpls")]
        assert labels == [1, 2]

    def test_has(self):
        result = dissect([Ethernet(E1, E2), IPv4("10.0.0.1", "10.0.0.2"),
                          UDP(1, 2), Payload(8)])
        assert result.has("udp") and not result.has("tcp")
