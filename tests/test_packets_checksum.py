"""Tests for the Internet checksum implementation."""

import struct

from repro.packets.checksum import (
    PROTO_TCP,
    PROTO_UDP,
    internet_checksum,
    ones_complement_sum,
    pseudo_header_v4,
    pseudo_header_v6,
    transport_checksum,
)


class TestOnesComplement:
    def test_rfc1071_example(self):
        # The classic example from RFC 1071 §3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert ones_complement_sum(data) == 0xDDF2
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padding(self):
        assert ones_complement_sum(b"\xff") == ones_complement_sum(b"\xff\x00")

    def test_empty(self):
        assert internet_checksum(b"") == 0xFFFF

    def test_verification_property(self):
        # Inserting the checksum makes the total checksum zero.
        data = b"The quick brown fox!"  # even length
        checksum = internet_checksum(data)
        combined = data + struct.pack("!H", checksum)
        assert internet_checksum(combined) == 0

    def test_all_zero(self):
        assert internet_checksum(b"\x00" * 8) == 0xFFFF


class TestPseudoHeaders:
    def test_v4_layout(self):
        pseudo = pseudo_header_v4(b"\x0a\x00\x00\x01", b"\x0a\x00\x00\x02", 6, 20)
        assert len(pseudo) == 12
        assert pseudo[9] == 6
        assert struct.unpack("!H", pseudo[10:12])[0] == 20

    def test_v6_layout(self):
        pseudo = pseudo_header_v6(b"\x00" * 16, b"\x01" * 16, 17, 8)
        assert len(pseudo) == 40
        assert pseudo[-1] == 17

    def test_udp_checksum_never_zero(self):
        # A computed zero is transmitted as 0xFFFF (UDP-only rule, RFC 768).
        # Construct data whose checksum would be zero: all 0xFF words.
        pseudo = b"\xff\xff"
        segment = b"\xff\xff"
        assert transport_checksum(pseudo, segment, PROTO_UDP) == 0xFFFF

    def test_tcp_zero_checksum_emitted_as_is(self):
        # TCP has no "no checksum" escape: a computed 0x0000 is legal and
        # must NOT be rewritten to 0xFFFF (regression: the substitution
        # used to apply to every transport protocol).
        pseudo = b"\xff\xff"
        segment = b"\xff\xff"
        assert transport_checksum(pseudo, segment, PROTO_TCP) == 0

    def test_nonzero_checksums_unchanged_for_both(self):
        pseudo = pseudo_header_v4(b"\x0a\x00\x00\x01", b"\x0a\x00\x00\x02", 6, 4)
        segment = b"\x12\x34\x56\x78"
        expected = internet_checksum(pseudo + segment)
        assert expected != 0
        assert transport_checksum(pseudo, segment, PROTO_TCP) == expected
        assert transport_checksum(pseudo, segment, PROTO_UDP) == expected
