"""Tests for the Section-5 study package (ports, slices, activity)."""

import numpy as np
import pytest

from repro.study.activity import (
    SC24_WEEK, NetworkActivityModel, port_utilization_quantiles,
)
from repro.study.ports import port_distribution_table, uplink_summary
from repro.study.slices import (
    concurrency_summary, duration_table, slice_study, spread_table,
)
from repro.testbed import FederationBuilder
from repro.testbed.federation import DEFAULT_SITE_NAMES


@pytest.fixture(scope="module")
def federation():
    return FederationBuilder(seed=42).build()


@pytest.fixture(scope="module")
def study():
    return slice_study(DEFAULT_SITE_NAMES, weeks=52, seed=11)


class TestPorts:
    def test_table_has_all_sites(self, federation):
        table = port_distribution_table(federation)
        assert len(table.rows) == 30
        assert table.columns == ["site", "downlinks", "uplinks"]

    def test_summary_claims(self, federation):
        summary = uplink_summary(federation)
        assert summary.every_site_downlink_heavy
        assert summary.total_downlinks > 3 * summary.total_uplinks
        assert summary.max_uplinks <= 8


class TestSlices:
    def test_single_site_fraction(self, study):
        assert study.single_site_fraction == pytest.approx(0.665, abs=0.03)

    def test_duration_24h(self, study):
        assert study.p_duration_le_24h == pytest.approx(0.75, abs=0.06)

    def test_concurrency_statistics(self, study):
        """Fig 5: mean 85, sigma 52, max 272 (loose bands)."""
        assert 60 <= study.concurrency_mean <= 115
        assert 30 <= study.concurrency_std <= 85
        assert 180 <= study.concurrency_max <= 400

    def test_tables_render(self, study):
        for table in (spread_table(study.schedule),
                      duration_table(study.schedule),
                      concurrency_summary(study.schedule)):
            assert table.rows
            assert table.render()

    def test_spread_cumulative_monotone(self, study):
        table = spread_table(study.schedule)
        cumulative = table.column("cumulative")
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == pytest.approx(1.0, abs=0.01)


class TestActivity:
    def test_peak_is_sc24_week(self, study):
        model = NetworkActivityModel(study.schedule)
        peak = model.peak()
        assert abs(peak.week - SC24_WEEK) <= 2

    def test_peak_magnitude_band(self, study):
        """Paper: 3.968 Tbps mean during the SC'24 week."""
        model = NetworkActivityModel(study.schedule)
        assert 1.5 <= model.peak().mean_tbps <= 10.0

    def test_peak_towers_over_median(self, study):
        model = NetworkActivityModel(study.schedule)
        series = [w.mean_tbps for w in model.weekly_series() if w.has_data]
        assert model.peak().mean_tbps > 3 * float(np.median(series))

    def test_missing_weeks_have_no_data(self, study):
        model = NetworkActivityModel(study.schedule, missing_weeks=(3, 4))
        series = model.weekly_series()
        assert not series[3].has_data and not series[4].has_data
        assert series[3].mean_tbps == 0.0

    def test_table(self, study):
        table = NetworkActivityModel(study.schedule).to_table()
        assert len(table.rows) >= 50


class TestPortUtilization:
    def test_paper_quantiles(self):
        """R4.Q1: 50% of ports <= ~38% utilization; some at line rate."""
        q = port_utilization_quantiles()
        assert q["p50"] == pytest.approx(0.38, abs=0.06)
        assert q["max"] == 1.0
        assert 0.01 <= q["fraction_at_line_rate"] <= 0.08

    def test_deterministic(self):
        assert port_utilization_quantiles(seed=3) == port_utilization_quantiles(seed=3)

    def test_rejects_no_ports(self):
        with pytest.raises(ValueError):
            port_utilization_quantiles(ports=0)
