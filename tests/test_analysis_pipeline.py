"""Tests for the end-to-end analysis pipeline over a real profile.

Uses the session-scoped profiled bundle: a Patchwork run over live
traffic on a four-site federation.
"""


from repro.analysis import AnalysisPipeline
from repro.analysis.acap import read_acap


class TestPipeline:
    def test_digest_produced_acaps(self, profiled_bundle_and_pipeline):
        bundle, pipeline, _report = profiled_bundle_and_pipeline
        assert len(pipeline.acaps) == len(bundle.pcap_paths)

    def test_acap_files_persisted_and_readable(self, profiled_bundle_and_pipeline):
        _bundle, pipeline, _report = profiled_bundle_and_pipeline
        on_disk = sorted(pipeline.acap_dir.rglob("*.acap"))
        assert len(on_disk) == len(pipeline.acaps)
        reloaded = read_acap(on_disk[0])
        assert reloaded.source

    def test_index_covers_all_sites(self, profiled_bundle_and_pipeline):
        bundle, pipeline, _report = profiled_bundle_and_pipeline
        profiled_sites = {site for site, result in bundle.results.items()
                          if result.samples}
        assert set(pipeline.index.sites()) == profiled_sites

    def test_report_totals(self, profiled_bundle_and_pipeline):
        _bundle, pipeline, report = profiled_bundle_and_pipeline
        assert report.total_frames == pipeline.index.total_frames()
        assert report.total_frames > 0

    def test_report_tables_present(self, profiled_bundle_and_pipeline):
        _bundle, _pipeline, report = profiled_bundle_and_pipeline
        expected = {"frame_sizes_by_site", "frame_sizes_overall",
                    "header_occurrence", "header_diversity", "ip_versions",
                    "flows_per_sample", "aggregated_flow_sizes", "tcp_flags"}
        assert expected <= set(report.tables)

    def test_header_occurrence_sane(self, profiled_bundle_and_pipeline):
        _bundle, _pipeline, report = profiled_bundle_and_pipeline
        table = report.tables["header_occurrence"]
        occurrence = dict(zip(table.column("header"),
                              table.column("percent_of_frames")))
        assert occurrence["eth"] >= 100.0
        assert occurrence.get("ipv4", 0) > occurrence.get("ipv6", 0)

    def test_flows_per_sample_counted(self, profiled_bundle_and_pipeline):
        _bundle, _pipeline, report = profiled_bundle_and_pipeline
        assert len(report.flows_per_sample) == len(_pipeline.acaps)
        assert sum(report.flows_per_sample) > 0

    def test_csv_emission(self, profiled_bundle_and_pipeline, tmp_path):
        _bundle, _pipeline, report = profiled_bundle_and_pipeline
        written = report.write_csvs(tmp_path / "csv")
        assert len(written) == len(report.tables)
        assert all(p.exists() and p.stat().st_size > 0 for p in written)

    def test_render_is_text(self, profiled_bundle_and_pipeline):
        _bundle, _pipeline, report = profiled_bundle_and_pipeline
        text = report.render()
        assert "header" in text and "site" in text

    def test_aggregated_flows_nonempty(self, profiled_bundle_and_pipeline):
        _bundle, _pipeline, report = profiled_bundle_and_pipeline
        assert len(report.aggregated_flows) > 0
        # Flow keys carry virtualization tags.
        key = next(iter(report.aggregated_flows))
        assert key.vlan_ids or key.mpls_labels

    def test_empty_pipeline(self, tmp_path):
        report = AnalysisPipeline().run([])
        assert report.total_frames == 0
        assert report.sites == []
