"""Tests for the end-to-end analysis pipeline over a real profile.

Uses the session-scoped profiled bundle: a Patchwork run over live
traffic on a four-site federation.
"""


from repro.analysis import AnalysisPipeline
from repro.analysis.acap import read_acap


class TestPipeline:
    def test_digest_produced_acaps(self, profiled_bundle_and_pipeline):
        bundle, pipeline, _report = profiled_bundle_and_pipeline
        assert len(pipeline.acaps) == len(bundle.pcap_paths)

    def test_acap_files_persisted_and_readable(self, profiled_bundle_and_pipeline):
        _bundle, pipeline, _report = profiled_bundle_and_pipeline
        on_disk = sorted(pipeline.acap_dir.rglob("*.acap"))
        assert len(on_disk) == len(pipeline.acaps)
        reloaded = read_acap(on_disk[0])
        assert reloaded.source

    def test_index_covers_all_sites(self, profiled_bundle_and_pipeline):
        bundle, pipeline, _report = profiled_bundle_and_pipeline
        profiled_sites = {site for site, result in bundle.results.items()
                          if result.samples}
        assert set(pipeline.index.sites()) == profiled_sites

    def test_report_totals(self, profiled_bundle_and_pipeline):
        _bundle, pipeline, report = profiled_bundle_and_pipeline
        assert report.total_frames == pipeline.index.total_frames()
        assert report.total_frames > 0

    def test_report_tables_present(self, profiled_bundle_and_pipeline):
        _bundle, _pipeline, report = profiled_bundle_and_pipeline
        expected = {"frame_sizes_by_site", "frame_sizes_overall",
                    "header_occurrence", "header_diversity", "ip_versions",
                    "flows_per_sample", "aggregated_flow_sizes", "tcp_flags"}
        assert expected <= set(report.tables)

    def test_header_occurrence_sane(self, profiled_bundle_and_pipeline):
        _bundle, _pipeline, report = profiled_bundle_and_pipeline
        table = report.tables["header_occurrence"]
        occurrence = dict(zip(table.column("header"),
                              table.column("percent_of_frames")))
        assert occurrence["eth"] >= 100.0
        assert occurrence.get("ipv4", 0) > occurrence.get("ipv6", 0)

    def test_flows_per_sample_counted(self, profiled_bundle_and_pipeline):
        _bundle, _pipeline, report = profiled_bundle_and_pipeline
        assert len(report.flows_per_sample) == len(_pipeline.acaps)
        assert sum(report.flows_per_sample) > 0

    def test_csv_emission(self, profiled_bundle_and_pipeline, tmp_path):
        _bundle, _pipeline, report = profiled_bundle_and_pipeline
        written = report.write_csvs(tmp_path / "csv")
        assert len(written) == len(report.tables)
        assert all(p.exists() and p.stat().st_size > 0 for p in written)

    def test_render_is_text(self, profiled_bundle_and_pipeline):
        _bundle, _pipeline, report = profiled_bundle_and_pipeline
        text = report.render()
        assert "header" in text and "site" in text

    def test_aggregated_flows_nonempty(self, profiled_bundle_and_pipeline):
        _bundle, _pipeline, report = profiled_bundle_and_pipeline
        assert len(report.aggregated_flows) > 0
        # Flow keys carry virtualization tags.
        key = next(iter(report.aggregated_flows))
        assert key.vlan_ids or key.mpls_labels

    def test_empty_pipeline(self, tmp_path):
        report = AnalysisPipeline().run([])
        assert report.total_frames == 0
        assert report.sites == []


class TestQuarantine:
    """A corrupt pcap must be dropped from the corpus with a counted
    quarantine, not abort the whole analysis run."""

    def make_corpus(self, tmp_path, corrupt=1):
        from repro.packets.builder import FrameBuilder, FrameSpec
        from repro.packets.headers import Ethernet, IPv4, Payload, TCP
        from repro.packets.pcap import PcapRecord, PcapWriter
        frame = FrameBuilder().build(FrameSpec([
            Ethernet("02:00:00:00:00:01", "02:00:00:00:00:02"),
            IPv4("10.1.2.3", "10.4.5.6"), TCP(50000, 443),
            Payload(0)], target_size=200))
        site = tmp_path / "STAR"
        site.mkdir()
        paths = []
        for i in range(2):
            path = site / f"s{i}.pcap"
            with PcapWriter(path, snaplen=200) as writer:
                for j in range(5):
                    writer.write(PcapRecord(j * 0.1, frame))
            paths.append(path)
        for i in range(corrupt):
            bad = site / f"bad{i}.pcap"
            bad.write_bytes(b"\x00" * 40)  # bad magic: analysis-poison
            paths.append(bad)
        return paths

    def test_corrupt_pcap_quarantined_not_fatal(self, tmp_path):
        pipeline = AnalysisPipeline(acap_dir=tmp_path / "acap")
        report = pipeline.run(self.make_corpus(tmp_path))
        assert pipeline.stats.quarantined == 1
        assert len(pipeline.acaps) == 2
        assert report.total_frames == 10
        assert "quarantined" in pipeline.stats.render()

    def test_clean_corpus_has_no_quarantines(self, tmp_path):
        pipeline = AnalysisPipeline(acap_dir=tmp_path / "acap")
        pipeline.run(self.make_corpus(tmp_path, corrupt=0))
        assert pipeline.stats.quarantined == 0
        assert "quarantined" not in pipeline.stats.render()
