"""Tests for the future-work features: dynamic scaling & mirror sharing."""

import pytest

from repro.core.scaling import ScalingAction, ScalingController
from repro.core.sharing import MirrorScheduler
from repro.netsim.engine import Simulator
from repro.testbed import FederationBuilder, TestbedAPI
from repro.testbed.slice_model import NodeRequest, SliceRequest


@pytest.fixture()
def api():
    federation = FederationBuilder(seed=42).build(site_names=["STAR", "MICH"])
    return TestbedAPI(federation)


def drain(api, site, leave):
    free = api.available_resources(site).dedicated_nics
    take = int(free) - leave
    if take > 0:
        api.create_slice(SliceRequest(site=site, nodes=[
            NodeRequest(name=f"u{i}") for i in range(take)]))


class TestScalingPolicy:
    def test_grow_when_port_rich_and_nics_free(self, api):
        controller = ScalingController(api)
        decision = controller.decide("STAR", eligible_ports=40, slots=4,
                                     extra_nodes=0)
        assert decision.action is ScalingAction.GROW

    def test_hold_when_balanced(self, api):
        controller = ScalingController(api)
        decision = controller.decide("STAR", eligible_ports=8, slots=4,
                                     extra_nodes=0)
        assert decision.action is ScalingAction.HOLD

    def test_hold_when_no_spare_nics(self, api):
        drain(api, "STAR", leave=1)  # only the reserve remains
        controller = ScalingController(api, nic_reserve=1)
        decision = controller.decide("STAR", eligible_ports=40, slots=2,
                                     extra_nodes=0)
        assert decision.action is ScalingAction.HOLD

    def test_nice_shrink_when_site_squeezed(self, api):
        drain(api, "STAR", leave=1)
        controller = ScalingController(api, nice_free_nic_floor=1)
        decision = controller.decide("STAR", eligible_ports=40, slots=4,
                                     extra_nodes=1)
        assert decision.action is ScalingAction.SHRINK
        assert "nice" in decision.reason

    def test_growth_bounded(self, api):
        controller = ScalingController(api, max_extra_nodes=1)
        decision = controller.decide("STAR", eligible_ports=100, slots=2,
                                     extra_nodes=1)
        assert decision.action is ScalingAction.HOLD

    def test_no_slots_holds(self, api):
        controller = ScalingController(api)
        assert controller.decide("STAR", 10, 0, 0).action is ScalingAction.HOLD


class TestScalingMechanics:
    def test_grow_allocates_and_shrink_releases(self, api):
        controller = ScalingController(api)
        before = api.available_resources("STAR").dedicated_nics
        extra = controller.grow("STAR", "patchwork-STAR")
        assert extra is not None
        assert api.available_resources("STAR").dedicated_nics == before - 1
        assert controller.grows == 1
        controller.shrink(extra)
        assert api.available_resources("STAR").dedicated_nics == before
        assert controller.shrinks == 1

    def test_grow_fails_gracefully_when_empty(self, api):
        drain(api, "STAR", leave=0)
        controller = ScalingController(api)
        assert controller.grow("STAR", "p") is None


class TestMirrorScheduler:
    def test_immediate_grant_when_free(self):
        sim = Simulator()
        scheduler = MirrorScheduler(sim)
        grants = []
        scheduler.request("STAR", "p1", "alice", 60.0, grants.append)
        assert len(grants) == 1
        assert scheduler.holder_of("STAR", "p1") == "alice"

    def test_contender_queues_then_rotates(self):
        sim = Simulator()
        scheduler = MirrorScheduler(sim)
        log = []
        scheduler.request("STAR", "p1", "alice", 60.0,
                          lambda l: log.append(("grant", l.holder)),
                          lambda l: log.append(("revoke", l.holder)))
        scheduler.request("STAR", "p1", "bob", 60.0,
                          lambda l: log.append(("grant", l.holder)))
        assert scheduler.queue_length("STAR", "p1") == 1
        sim.run(until=61.0)
        assert log == [("grant", "alice"), ("revoke", "alice"),
                       ("grant", "bob")]
        assert scheduler.holder_of("STAR", "p1") == "bob"

    def test_early_release_hands_over(self):
        sim = Simulator()
        scheduler = MirrorScheduler(sim)
        leases = {}
        scheduler.request("STAR", "p1", "alice", 600.0,
                          lambda l: leases.setdefault("alice", l))
        scheduler.request("STAR", "p1", "bob", 60.0,
                          lambda l: leases.setdefault("bob", l))
        scheduler.release(leases["alice"])
        assert scheduler.holder_of("STAR", "p1") == "bob"
        # Alice's expiry event must not fire later and evict Bob early.
        sim.run(until=30.0)
        assert scheduler.holder_of("STAR", "p1") == "bob"

    def test_ports_independent(self):
        sim = Simulator()
        scheduler = MirrorScheduler(sim)
        holders = []
        scheduler.request("STAR", "p1", "alice", 60.0,
                          lambda l: holders.append(l.holder))
        scheduler.request("STAR", "p2", "bob", 60.0,
                          lambda l: holders.append(l.holder))
        assert holders == ["alice", "bob"]

    def test_lease_capped(self):
        sim = Simulator()
        scheduler = MirrorScheduler(sim, max_lease_seconds=100.0)
        leases = []
        scheduler.request("STAR", "p1", "alice", 1e9, leases.append)
        assert leases[0].duration == 100.0

    def test_release_idempotent(self):
        sim = Simulator()
        scheduler = MirrorScheduler(sim)
        leases = []
        scheduler.request("STAR", "p1", "a", 60.0, leases.append)
        scheduler.release(leases[0])
        scheduler.release(leases[0])

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MirrorScheduler(sim, max_lease_seconds=0)
        with pytest.raises(ValueError):
            MirrorScheduler(sim).request("S", "p", "a", 0.0, lambda l: None)
