"""Crash-safety coverage: WAL recovery, atomic writes, durable campaigns.

The unit half exercises the write-ahead log and checkpoint primitives
directly, including the exact crash windows the atomic-write idiom is
designed around (mid-write, either side of ``os.replace``).  The
campaign half runs real (tiny) campaigns through
:class:`~repro.core.campaign.CampaignRunner` and pins three
deterministic crash points found by fuzzing:

* ``crash_at=10``  -- mid-occasion, sample rows in the WAL (salvage);
* ``crash_at=19``  -- after the occasion-0 checkpoint's ``os.replace``
  but before its WAL commit (the orphan-checkpoint window);
* ``crash_at=22``  -- after occasion 0 committed (resume must skip it).

Every IO op in a seeded campaign is deterministic, so these indices are
stable; if a code change shifts the op sequence, the precondition
asserts below fail with instructions rather than silently testing the
wrong window.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.campaign import CampaignManifest, CampaignRunner
from repro.core.checkpoint import (
    CHECKPOINT_DIR,
    WAL_NAME,
    CampaignLog,
    CheckpointStore,
    WalCorruptionError,
    describe_run,
    fold_records,
    list_runs,
    read_wal,
)
from repro.testbed.chaos import CrashingIO, default_manifest, run_chaos
from repro.util.atomio import (
    FileIO,
    SimulatedCrash,
    atomic_write_bytes,
    sweep_tmp_files,
)
from repro.util.rng import derive_rng

TINY = default_manifest(7)


# -- WAL primitives ------------------------------------------------------


class TestCampaignLog:
    def test_append_and_reopen_round_trip(self, tmp_path):
        wal = tmp_path / WAL_NAME
        with CampaignLog(wal) as log:
            log.append("campaign-begin", {"seed": 7})
            log.append("occasion-begin", {"occasion": 0}, commit=True)
        with CampaignLog(wal) as log2:
            pass
        records = read_wal(wal)[0]
        assert [(r.seq, r.kind) for r in records] == \
            [(0, "campaign-begin"), (1, "occasion-begin")]
        assert not log2.torn_on_open

    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        wal = tmp_path / WAL_NAME
        with CampaignLog(wal) as log:
            log.append("campaign-begin", {"seed": 7}, commit=True)
        clean_size = wal.stat().st_size
        with open(wal, "ab") as handle:
            handle.write(b'{"seq": 1, "kind": "occ')  # torn mid-append
        log2 = CampaignLog(wal)
        records = log2.open()
        assert log2.torn_on_open
        assert len(records) == 1
        assert wal.stat().st_size == clean_size  # tail gone
        # Appends continue the committed sequence, not the torn one.
        assert log2.append("occasion-begin", {"occasion": 0}).seq == 1
        log2.close()

    def test_torn_tail_with_non_utf8_bytes(self, tmp_path):
        """Bitrot/power loss can tear a line into non-UTF-8 garbage; the
        torn-tail split must count raw bytes (a decoded U+FFFD is 3
        bytes) or reopening truncates into the last committed record."""
        wal = tmp_path / WAL_NAME
        with CampaignLog(wal) as log:
            log.append("campaign-begin", {"seed": 7}, commit=True)
        clean_size = wal.stat().st_size
        with open(wal, "ab") as handle:
            handle.write(b'{"seq": 1, "kind"' + b"\xff\xfe\x80\x80")
        records, torn, valid_bytes = read_wal(wal)
        assert torn
        assert len(records) == 1
        assert valid_bytes == clean_size
        log2 = CampaignLog(wal)
        assert len(log2.open()) == 1
        log2.close()
        assert wal.stat().st_size == clean_size  # committed record intact
        assert read_wal(wal)[0][0].data == {"seed": 7}

    def test_terminated_line_damage_is_fatal(self, tmp_path):
        wal = tmp_path / WAL_NAME
        with CampaignLog(wal) as log:
            log.append("campaign-begin", {"seed": 7})
            log.append("occasion-begin", {"occasion": 0}, commit=True)
        raw = wal.read_bytes()
        # Flip one byte inside the FIRST (terminated) line: no crash can
        # produce this, so recovery must refuse rather than guess.
        wal.write_bytes(raw[:10] + b"X" + raw[11:])
        with pytest.raises(WalCorruptionError):
            CampaignLog(wal).open()

    def test_checksum_catches_payload_tamper(self, tmp_path):
        wal = tmp_path / WAL_NAME
        with CampaignLog(wal) as log:
            log.append("campaign-begin", {"seed": 7}, commit=True)
        line = json.loads(wal.read_text())
        line["data"]["seed"] = 8  # valid JSON, wrong checksum
        wal.write_text(json.dumps(line) + "\n")
        with pytest.raises(WalCorruptionError):
            read_wal(wal)


class TestAtomicWriteCrashWindows:
    def test_crash_mid_write_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "state.json"
        target.write_bytes(b"old")
        io = CrashingIO(1, derive_rng(0, "w"))
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(target, b"new-state", io=io)
        assert target.read_bytes() == b"old"
        assert sweep_tmp_files(tmp_path) == 1  # partial temp removed

    def test_crash_before_replace_keeps_old_state(self, tmp_path):
        target = tmp_path / "state.json"
        target.write_bytes(b"old")
        io = CrashingIO(3, derive_rng(0, "pre"), mode="pre-replace")
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(target, b"new-state", io=io)
        assert target.read_bytes() == b"old"
        sweep_tmp_files(tmp_path)
        assert list(tmp_path.iterdir()) == [target]

    def test_crash_after_replace_has_full_new_state(self, tmp_path):
        target = tmp_path / "state.json"
        target.write_bytes(b"old")
        io = CrashingIO(3, derive_rng(0, "post"), mode="post-replace")
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(target, b"new-state", io=io)
        # The replace completed: old or whole-new, never torn.
        assert target.read_bytes() == b"new-state"


class TestCheckpointStore:
    def test_round_trip_and_checksum(self, tmp_path):
        store = CheckpointStore(tmp_path / CHECKPOINT_DIR)
        path, sha = store.save(3, {"occasion": 3, "next_seq": 40})
        assert path.name == "occ0003.ckpt"
        assert store.load(3, expect_sha=sha)["next_seq"] == 40
        with pytest.raises(WalCorruptionError):
            store.load(3, expect_sha="0" * 64)

    def test_sweep_drops_crash_debris(self, tmp_path):
        store = CheckpointStore(tmp_path / CHECKPOINT_DIR)
        store.save(0, {"occasion": 0})
        (store.directory / ".occ0001.ckpt.tmp").write_bytes(b"partial")
        assert store.sweep() == 1
        assert store.path_for(0).exists()


# -- campaigns: crash, resume, oracles -----------------------------------


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted tiny campaign: dir + ground-truth digests."""
    from repro.testbed.chaos import run_reference
    run_dir = tmp_path_factory.mktemp("campaign") / "ref"
    digests = run_reference(TINY, run_dir)
    return run_dir, digests


def crash_run(run_dir: Path, crash_at: int, mode=None) -> None:
    io = CrashingIO(crash_at, derive_rng(0, "scan"), mode=mode)
    with pytest.raises(SimulatedCrash):
        CampaignRunner(run_dir, manifest=TINY, io=io).run()


class TestCampaignResume:
    def test_reference_run_is_sound(self, reference):
        run_dir, digests = reference
        assert digests["audit_ok"]
        assert digests["success_rate"] == 1.0
        assert digests["sample_keys"]
        assert (run_dir / "journal.jsonl").exists()

    def test_resume_of_complete_run_is_noop(self, reference):
        run_dir, digests = reference
        summary = CampaignRunner(run_dir).run(resume=True)
        assert summary.noop and summary.resumed
        assert summary.executed == [] and summary.salvaged == []
        assert summary.skipped == list(range(TINY.occasions))
        assert summary.journal_sha256 == digests["journal_sha256"]
        # Twice over: resume is idempotent.
        again = CampaignRunner(run_dir).run(resume=True)
        assert again.noop
        assert again.journal_sha256 == digests["journal_sha256"]

    def test_fresh_start_refuses_existing_wal(self, reference):
        run_dir, _digests = reference
        with pytest.raises(FileExistsError):
            CampaignRunner(run_dir, manifest=TINY).run()

    def test_resume_requires_a_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CampaignRunner(tmp_path / "nothing-here").run(resume=True)

    def test_resume_rejects_mismatched_manifest(self, reference):
        run_dir, _digests = reference
        other = CampaignManifest(**{**TINY.to_dict(), "seed": 8})
        with pytest.raises(WalCorruptionError):
            CampaignRunner(run_dir, manifest=other).run(resume=True)

    def test_crash_before_any_occasion_resumes_byte_identical(
            self, reference, tmp_path):
        _ref_dir, digests = reference
        # Op 1 is inside the manifest's own atomic write, so the crash
        # leaves a bare directory; resume needs the manifest re-supplied.
        crash_run(tmp_path, crash_at=1)
        summary = CampaignRunner(tmp_path, manifest=TINY).run(resume=True)
        assert summary.executed == list(range(TINY.occasions))
        assert summary.journal_sha256 == digests["journal_sha256"]
        assert summary.records_sha256 == digests["records_sha256"]

    def test_orphan_checkpoint_is_ignored(self, reference, tmp_path):
        """Crash between the checkpoint's os.replace and its WAL commit:
        the checkpoint file exists but the WAL never acknowledged it.
        Resume must demote it and re-run the occasion."""
        _ref_dir, digests = reference
        crash_run(tmp_path, crash_at=19, mode="post-replace")
        state = fold_records(read_wal(tmp_path / WAL_NAME)[0])
        assert (tmp_path / CHECKPOINT_DIR / "occ0000.ckpt").exists() and \
            0 not in state.committed, \
            "crash_at=19 no longer lands in the orphan window; re-scan " \
            "crash points (see module docstring)"
        summary = CampaignRunner(tmp_path).run(resume=True)
        assert 0 in summary.executed
        assert summary.journal_sha256 == digests["journal_sha256"]

    def test_committed_occasion_skipped_on_resume(self, reference, tmp_path):
        _ref_dir, digests = reference
        crash_run(tmp_path, crash_at=22, mode="post-replace")
        state = fold_records(read_wal(tmp_path / WAL_NAME)[0])
        assert 0 in state.committed and 1 not in state.committed, \
            "crash_at=22 no longer lands after occasion 0's commit; " \
            "re-scan crash points (see module docstring)"
        summary = CampaignRunner(tmp_path).run(resume=True)
        assert summary.skipped == [0]
        assert summary.executed == [1]
        assert summary.journal_sha256 == digests["journal_sha256"]

    @pytest.mark.parametrize("damage", ["delete", "corrupt"])
    def test_damaged_committed_checkpoint_demotes_and_reruns(
            self, reference, tmp_path, damage):
        """A committed occasion whose checkpoint no longer verifies must
        be demoted and re-run (not skipped, not crashed on)."""
        _ref_dir, digests = reference
        crash_run(tmp_path, crash_at=22, mode="post-replace")
        state = fold_records(read_wal(tmp_path / WAL_NAME)[0])
        assert 0 in state.committed, \
            "crash_at=22 no longer lands after occasion 0's commit; " \
            "re-scan crash points (see module docstring)"
        ckpt = tmp_path / CHECKPOINT_DIR / "occ0000.ckpt"
        if damage == "delete":
            ckpt.unlink()
        else:
            ckpt.write_bytes(b'{"tampered": true}\n')
        summary = CampaignRunner(tmp_path).run(resume=True)
        assert summary.executed == list(range(TINY.occasions))
        assert summary.skipped == []
        assert summary.journal_sha256 == digests["journal_sha256"]
        assert summary.records_sha256 == digests["records_sha256"]

    def test_damaged_commit_is_not_salvageable(self, reference, tmp_path):
        """Demoting a failed-verification occasion also drops its WAL
        sample rows: salvage must re-run it, never adopt stale rows."""
        _ref_dir, _digests = reference
        crash_run(tmp_path, crash_at=22, mode="post-replace")
        (tmp_path / CHECKPOINT_DIR / "occ0000.ckpt").unlink()
        summary = CampaignRunner(tmp_path).run(resume=True, salvage=True)
        assert 0 in summary.executed
        assert 0 not in summary.salvaged

    def test_complete_run_detects_damaged_records(self, reference, tmp_path):
        """No-op resume of a complete campaign verifies records.json
        against the campaign-end digest, not just the journal."""
        import shutil

        run_dir, _digests = reference
        copy = tmp_path / "copy"
        shutil.copytree(run_dir, copy)
        (copy / "records.json").write_bytes(b'{"records":[]}\n')
        with pytest.raises(WalCorruptionError, match="records"):
            CampaignRunner(copy).run(resume=True)

    def test_salvage_adopts_samples_as_degraded(self, tmp_path):
        crash_run(tmp_path, crash_at=10)
        state = fold_records(read_wal(tmp_path / WAL_NAME)[0])
        assert state.salvageable(0), \
            "crash_at=10 no longer leaves salvageable sample rows; " \
            "re-scan crash points (see module docstring)"
        summary = CampaignRunner(tmp_path).run(resume=True, salvage=True)
        assert 0 in summary.salvaged
        assert summary.audit_ok
        records = json.loads((tmp_path / "records.json").read_text())
        outcomes = {row["outcome"] for row in records["records"]
                    if row["occasion"] == 0}
        assert "degraded" in outcomes

    def test_describe_and_list_runs(self, reference, tmp_path):
        run_dir, _digests = reference
        info = describe_run(run_dir)
        assert info["state"] == "complete"
        assert info["occasions_committed"] == TINY.occasions
        crash_run(tmp_path / "crashed", crash_at=22, mode="post-replace")
        partial = describe_run(tmp_path / "crashed")
        assert partial["state"] == "resumable"
        assert partial["occasions_committed"] == 1
        runs = list_runs(tmp_path)
        assert [r["path"] for r in runs] == [str(tmp_path / "crashed")]


class TestChaosSmoke:
    def test_small_batch_passes_every_oracle(self, tmp_path):
        report = run_chaos(tmp_path / "chaos", trials=3, seed=3,
                           manifest=TINY)
        assert report.ok, report.render()
        assert report.trials == 3 and report.passed == 3

    def test_failures_keep_their_evidence(self, tmp_path):
        # Passing trials are deleted; the reference always survives.
        run_chaos(tmp_path / "chaos", trials=1, seed=4, manifest=TINY)
        remaining = sorted(p.name for p in (tmp_path / "chaos").iterdir())
        assert remaining == ["reference"]
