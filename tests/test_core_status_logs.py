"""Tests for run outcomes and instance logs."""

import pytest

from repro.core.logs import InstanceLog, LogEvent
from repro.core.status import (
    RunOutcome, RunRecord, outcome_fractions, publish_outcomes,
    recovery_summary, success_rate,
)
from repro.obs import Observability, scoped


def record(outcome, site="STAR", **kwargs):
    return RunRecord(site=site, started_at=0.0, outcome=outcome, **kwargs)


class TestStatus:
    def test_profiled_includes_degraded(self):
        assert record(RunOutcome.SUCCESS).profiled
        assert record(RunOutcome.DEGRADED).profiled
        assert not record(RunOutcome.FAILED).profiled
        assert not record(RunOutcome.INCOMPLETE).profiled

    def test_success_rate(self):
        records = [record(RunOutcome.SUCCESS)] * 3 + [record(RunOutcome.FAILED)]
        assert success_rate(records) == 0.75

    def test_success_rate_empty(self):
        assert success_rate([]) == 0.0

    def test_outcome_fractions_sum_to_one(self):
        records = ([record(RunOutcome.SUCCESS)] * 5
                   + [record(RunOutcome.DEGRADED)] * 2
                   + [record(RunOutcome.FAILED)] * 2
                   + [record(RunOutcome.INCOMPLETE)])
        fractions = outcome_fractions(records)
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions[RunOutcome.SUCCESS] == 0.5

    def test_outcome_fractions_empty(self):
        fractions = outcome_fractions([])
        assert all(v == 0.0 for v in fractions.values())

    def test_all_failed(self):
        records = [record(RunOutcome.FAILED)] * 4
        assert success_rate(records) == 0.0
        fractions = outcome_fractions(records)
        assert fractions[RunOutcome.FAILED] == 1.0
        assert fractions[RunOutcome.SUCCESS] == 0.0
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_degraded_only_counts_as_profiled(self):
        records = [record(RunOutcome.DEGRADED, recovered=True, restarts=1)] * 3
        assert success_rate(records) == 1.0
        assert outcome_fractions(records)[RunOutcome.DEGRADED] == 1.0

    def test_recovery_summary_zero_runs(self):
        assert recovery_summary([]) == {
            "retries": 0, "breaker_opens": 0, "restarts": 0,
            "recovered_runs": 0, "redispatched_runs": 0,
        }

    def test_recovery_summary_aggregates(self):
        records = [
            record(RunOutcome.DEGRADED, retries=2, breaker_opens=1,
                   restarts=1, recovered=True),
            record(RunOutcome.FAILED, site="MICH", retries=3,
                   redispatched=True),
        ]
        summary = recovery_summary(records)
        assert summary == {
            "retries": 5, "breaker_opens": 1, "restarts": 1,
            "recovered_runs": 1, "redispatched_runs": 1,
        }


class TestPublishOutcomes:
    def test_publishes_gauges_counters_and_event(self):
        records = [record(RunOutcome.SUCCESS),
                   record(RunOutcome.DEGRADED, site="MICH", restarts=2,
                          recovered=True),
                   record(RunOutcome.FAILED, site="UTAH")]
        with scoped(Observability.create()) as obs:
            summary = publish_outcomes(records, t=99.0)
        assert summary == recovery_summary(records)
        assert obs.registry.get("recovery.restarts").value == 2
        assert obs.registry.get("runs.success").value == 1
        assert obs.registry.get("runs.degraded").value == 1
        assert obs.registry.get("runs.failed").value == 1
        assert obs.registry.get("runs.incomplete").value == 0
        event = obs.journal.of_kind("recovery")[0]
        assert event.t == 99.0
        assert event.data["outcomes"]["success"] == 1

    def test_zero_runs_publishes_zeroes(self):
        with scoped(Observability.create()) as obs:
            summary = publish_outcomes([])
        assert summary["retries"] == 0
        assert obs.registry.get("runs.success").value == 0
        assert obs.journal.of_kind("recovery")[0].data["outcomes"] == {
            "success": 0, "degraded": 0, "failed": 0, "incomplete": 0,
        }

    def test_noop_under_disabled_obs(self):
        # The process default is inert; publishing must not explode or
        # register anything.
        summary = publish_outcomes([record(RunOutcome.SUCCESS)])
        assert summary["retries"] == 0


class TestInstanceLog:
    def test_append_and_query(self):
        log = InstanceLog("STAR", "pw1")
        log.info(1.0, "setup", "starting")
        log.warning(2.0, "acquire", "shortfall", resource="dedicated_nics")
        log.error(3.0, "watchdog", "crashed")
        assert len(log) == 3
        assert len(log.of_kind("acquire")) == 1
        assert len(log.errors()) == 1

    def test_levels_validated(self):
        log = InstanceLog("STAR", "pw1")
        with pytest.raises(ValueError):
            log.log(0.0, "shout", "k", "m")

    def test_render_contains_fields(self):
        log = InstanceLog("STAR", "pw1")
        log.info(12.5, "sample", "done", cycle=3)
        text = log.render()
        assert "site=STAR" in text
        assert "sample: done" in text
        assert "cycle=3" in text

    def test_write_to(self, tmp_path):
        log = InstanceLog("STAR", "pw1")
        log.info(0.0, "setup", "hello")
        path = log.write_to(tmp_path / "deep" / "instance.log")
        assert path.exists()
        assert "hello" in path.read_text()

    def test_iteration_order(self):
        log = InstanceLog("STAR", "pw1")
        for i in range(5):
            log.info(float(i), "k", f"m{i}")
        assert [e.message for e in log] == [f"m{i}" for i in range(5)]

    def test_log_lines_mirror_into_journal(self):
        with scoped(Observability.create()) as obs:
            log = InstanceLog("STAR", "pw1")
            log.warning(3.5, "acquire", "shortfall", resource="dedicated_nics")
        events = obs.journal.of_kind("log")
        assert len(events) == 1
        event = events[0]
        assert event.t == 3.5
        assert event.data == {
            "site": "STAR", "instance": "pw1", "level": "warning",
            "log_kind": "acquire", "message": "shortfall",
            "data": {"resource": "dedicated_nics"},
        }


class TestLogEventRender:
    def test_small_times_render_fixed_width(self):
        assert LogEvent(12.5, "info", "k", "m").render().startswith(
            "[0000000012.500]")

    def test_huge_times_do_not_overflow(self):
        # >= 1e10 s no longer fits the 14-column stamp; it must fall
        # back to a plain rendering instead of silently widening.
        event = LogEvent(1.5e10, "info", "k", "m")
        assert event.render().startswith("[15000000000.000]")
        small = LogEvent(1.0, "info", "k", "m").render()
        big = LogEvent(9.9e9, "info", "k", "m").render()
        assert small.index("]") == big.index("]")

    def test_negative_time_not_fixed_width(self):
        assert LogEvent(-1.0, "info", "k", "m").render().startswith("[-1.000]")

    def test_values_with_spaces_are_quoted(self):
        event = LogEvent(0.0, "info", "k", "m",
                         {"reason": "no free NICs", "count": 3})
        text = event.render()
        assert 'reason="no free NICs"' in text
        assert "count=3" in text

    def test_values_with_quotes_and_equals_escaped(self):
        event = LogEvent(0.0, "info", "k", "m", {"expr": 'a="b c"'})
        assert 'expr="a=\\"b c\\""' in event.render()

    def test_plain_values_unquoted(self):
        event = LogEvent(0.0, "info", "k", "m", {"site": "STAR"})
        assert "site=STAR" in event.render()
