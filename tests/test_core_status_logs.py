"""Tests for run outcomes and instance logs."""

import pytest

from repro.core.logs import InstanceLog
from repro.core.status import (
    RunOutcome, RunRecord, outcome_fractions, success_rate,
)


def record(outcome, site="STAR"):
    return RunRecord(site=site, started_at=0.0, outcome=outcome)


class TestStatus:
    def test_profiled_includes_degraded(self):
        assert record(RunOutcome.SUCCESS).profiled
        assert record(RunOutcome.DEGRADED).profiled
        assert not record(RunOutcome.FAILED).profiled
        assert not record(RunOutcome.INCOMPLETE).profiled

    def test_success_rate(self):
        records = [record(RunOutcome.SUCCESS)] * 3 + [record(RunOutcome.FAILED)]
        assert success_rate(records) == 0.75

    def test_success_rate_empty(self):
        assert success_rate([]) == 0.0

    def test_outcome_fractions_sum_to_one(self):
        records = ([record(RunOutcome.SUCCESS)] * 5
                   + [record(RunOutcome.DEGRADED)] * 2
                   + [record(RunOutcome.FAILED)] * 2
                   + [record(RunOutcome.INCOMPLETE)])
        fractions = outcome_fractions(records)
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions[RunOutcome.SUCCESS] == 0.5

    def test_outcome_fractions_empty(self):
        fractions = outcome_fractions([])
        assert all(v == 0.0 for v in fractions.values())


class TestInstanceLog:
    def test_append_and_query(self):
        log = InstanceLog("STAR", "pw1")
        log.info(1.0, "setup", "starting")
        log.warning(2.0, "acquire", "shortfall", resource="dedicated_nics")
        log.error(3.0, "watchdog", "crashed")
        assert len(log) == 3
        assert len(log.of_kind("acquire")) == 1
        assert len(log.errors()) == 1

    def test_levels_validated(self):
        log = InstanceLog("STAR", "pw1")
        with pytest.raises(ValueError):
            log.log(0.0, "shout", "k", "m")

    def test_render_contains_fields(self):
        log = InstanceLog("STAR", "pw1")
        log.info(12.5, "sample", "done", cycle=3)
        text = log.render()
        assert "site=STAR" in text
        assert "sample: done" in text
        assert "cycle=3" in text

    def test_write_to(self, tmp_path):
        log = InstanceLog("STAR", "pw1")
        log.info(0.0, "setup", "hello")
        path = log.write_to(tmp_path / "deep" / "instance.log")
        assert path.exists()
        assert "hello" in path.read_text()

    def test_iteration_order(self):
        log = InstanceLog("STAR", "pw1")
        for i in range(5):
            log.info(float(i), "k", f"m{i}")
        assert [e.message for e in log] == [f"m{i}" for i in range(5)]
