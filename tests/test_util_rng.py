"""Tests for repro.util.rng (determinism guarantees)."""

import numpy as np

from repro.util.rng import SEED_DOMAIN, SeedSequenceFactory, derive_rng


class TestDeriveRng:
    def test_same_seed_label_same_stream(self):
        a = derive_rng(7, "traffic/STAR").random(8)
        b = derive_rng(7, "traffic/STAR").random(8)
        assert np.array_equal(a, b)

    def test_different_labels_differ(self):
        a = derive_rng(7, "traffic/STAR").random(8)
        b = derive_rng(7, "traffic/MICH").random(8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(7, "x").random(8)
        b = derive_rng(8, "x").random(8)
        assert not np.array_equal(a, b)

    def test_unicode_labels_ok(self):
        derive_rng(1, "sité/λ").random()


class TestSeedSequenceFactory:
    def test_rng_repeatable(self):
        factory = SeedSequenceFactory(3)
        assert factory.rng("a").random() == factory.rng("a").random()

    def test_child_namespacing(self):
        parent = SeedSequenceFactory(3)
        child1 = parent.child("one")
        child2 = parent.child("two")
        assert child1.rng("x").random() != child2.rng("x").random()

    def test_child_is_deterministic(self):
        a = SeedSequenceFactory(3).child("c").rng("x").random()
        b = SeedSequenceFactory(3).child("c").rng("x").random()
        assert a == b

    def test_integer_draws_in_range(self):
        factory = SeedSequenceFactory(9)
        for _ in range(10):
            value = factory.integer("k", 0, 100)
            assert 0 <= value < 100

    def test_integer_is_stable(self):
        assert (SeedSequenceFactory(9).integer("k", 0, 1000)
                == SeedSequenceFactory(9).integer("k", 0, 1000))


class TestSeedDomain:
    """One shared 63-bit seed domain (the PR-7 bugfix): derive_rng and
    SeedSequenceFactory.child must reduce seeds identically, or a child
    seed produced by one and consumed by the other splits into two
    different streams depending on which code path masks it."""

    def test_single_domain_constant(self):
        assert SEED_DOMAIN == (1 << 63) - 1

    def test_child_seeds_live_inside_the_derive_domain(self):
        for label in ("site/STAR", "site/MICH", "chaos", "x/y/z"):
            child = SeedSequenceFactory(42).child(label)
            assert 0 <= child.seed <= SEED_DOMAIN

    def test_derivation_closed_under_composition(self):
        """Masking a child seed again must be the identity: the stream a
        child factory hands out equals derive_rng on its raw seed."""
        child = SeedSequenceFactory(42).child("site/STAR")
        direct = derive_rng(child.seed, "occasion0/world").random(8)
        via_factory = child.rng("occasion0/world").random(8)
        assert np.array_equal(direct, via_factory)
        # And re-masking cannot move the seed (it is already in-domain).
        assert child.seed & SEED_DOMAIN == child.seed

    def test_out_of_domain_master_seed_folds_consistently(self):
        """A master seed above the domain reduces the same way in both
        derive_rng and the factory paths."""
        big = (1 << 64) - 3      # above SEED_DOMAIN, below the old 64-bit mask
        a = derive_rng(big, "x").random(8)
        b = derive_rng(big & SEED_DOMAIN, "x").random(8)
        assert np.array_equal(a, b)


class TestShardSeedStability:
    """Per-site worker derivation must be identical across process start
    methods -- a spawn pool re-imports modules while fork inherits state,
    and shard seeding may depend on neither."""

    @staticmethod
    def _derive(site):
        from repro.util.rng import SeedSequenceFactory as Factory
        factory = Factory(42).child(f"site/{site}")
        return {stream: factory.integer(f"occasion0/{stream}", 0, 2 ** 31)
                for stream in ("world", "traffic", "coordinator")}

    def test_spawn_and_fork_agree(self):
        import multiprocessing

        inline = {site: self._derive(site) for site in ("STAR", "MICH")}
        for method in ("fork", "spawn"):
            if method not in multiprocessing.get_all_start_methods():
                continue
            ctx = multiprocessing.get_context(method)
            with ctx.Pool(1) as pool:
                derived = {site: pool.apply(_derive_shard_seeds, (site,))
                           for site in ("STAR", "MICH")}
            assert derived == inline, f"{method} derivation drifted"

    def test_manifest_shard_seeds_match_direct_derivation(self):
        from repro.core.campaign import CampaignManifest

        manifest = CampaignManifest(seed=42, sites=("STAR", "MICH"),
                                    occasions=1, sharded=True)
        assert manifest.shard_seeds(0, "STAR") == self._derive("STAR")
        assert manifest.occasion_shard_seeds(0) == {
            "STAR": self._derive("STAR"), "MICH": self._derive("MICH")}


def _derive_shard_seeds(site):
    """Module-level so a spawn pool can pickle it by reference."""
    return TestShardSeedStability._derive(site)
