"""Tests for repro.util.rng (determinism guarantees)."""

import numpy as np

from repro.util.rng import SeedSequenceFactory, derive_rng


class TestDeriveRng:
    def test_same_seed_label_same_stream(self):
        a = derive_rng(7, "traffic/STAR").random(8)
        b = derive_rng(7, "traffic/STAR").random(8)
        assert np.array_equal(a, b)

    def test_different_labels_differ(self):
        a = derive_rng(7, "traffic/STAR").random(8)
        b = derive_rng(7, "traffic/MICH").random(8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(7, "x").random(8)
        b = derive_rng(8, "x").random(8)
        assert not np.array_equal(a, b)

    def test_unicode_labels_ok(self):
        derive_rng(1, "sité/λ").random()


class TestSeedSequenceFactory:
    def test_rng_repeatable(self):
        factory = SeedSequenceFactory(3)
        assert factory.rng("a").random() == factory.rng("a").random()

    def test_child_namespacing(self):
        parent = SeedSequenceFactory(3)
        child1 = parent.child("one")
        child2 = parent.child("two")
        assert child1.rng("x").random() != child2.rng("x").random()

    def test_child_is_deterministic(self):
        a = SeedSequenceFactory(3).child("c").rng("x").random()
        b = SeedSequenceFactory(3).child("c").rng("x").random()
        assert a == b

    def test_integer_draws_in_range(self):
        factory = SeedSequenceFactory(9)
        for _ in range(10):
            value = factory.integer("k", 0, 100)
            assert 0 <= value < 100

    def test_integer_is_stable(self):
        assert (SeedSequenceFactory(9).integer("k", 0, 1000)
                == SeedSequenceFactory(9).integer("k", 0, 1000))
