"""Tests for the content-addressed acap cache."""

import os

import pytest

from repro.analysis.acap import digest_pcap
from repro.analysis.cache import AcapCache
from repro.packets.builder import FrameBuilder, FrameSpec
from repro.packets.headers import Ethernet, IPv4, Payload, TCP
from repro.packets.pcap import PcapRecord, PcapWriter

E1, E2 = "02:00:00:00:00:01", "02:00:00:00:00:02"


def write_pcap(path, n=5, sport=40000):
    frame = FrameBuilder().build(FrameSpec([
        Ethernet(E1, E2), IPv4("10.0.0.1", "10.0.0.2"),
        TCP(sport, 443), Payload(64)]))
    with PcapWriter(path) as writer:
        for i in range(n):
            writer.write(PcapRecord(i * 0.01, frame))
    return path


@pytest.fixture
def pcap(tmp_path):
    return write_pcap(tmp_path / "sample.pcap")


@pytest.fixture
def cache(tmp_path):
    return AcapCache(tmp_path / "cache")


class TestLookup:
    def test_empty_cache_misses(self, cache, pcap):
        assert cache.get(pcap) is None
        assert (cache.hits, cache.misses) == (0, 1)

    def test_put_then_get_hits(self, cache, pcap):
        acap = digest_pcap(pcap)
        entry = cache.put(pcap, acap)
        assert entry.exists()
        cached = cache.get(pcap)
        assert cached is not None
        assert cached.records == acap.records
        assert (cache.hits, cache.misses) == (1, 0)

    def test_hit_rewrites_source_to_caller_path(self, cache, pcap, tmp_path):
        cache.put(pcap, digest_pcap(pcap))
        # Same content under a different path: different mtime => miss,
        # but a hit on the original path reports the original path.
        cached = cache.get(pcap)
        assert cached.source == str(pcap)

    def test_missing_pcap_is_a_miss(self, cache, tmp_path):
        assert cache.get(tmp_path / "nope.pcap") is None
        assert cache.misses == 1

    def test_entries_are_sharded(self, cache, pcap):
        entry = cache.put(pcap, digest_pcap(pcap))
        key = AcapCache.key_for(pcap)
        assert entry.parent.name == key[:2]
        assert entry.name == f"{key}.acap"


class TestKeyRotation:
    def test_mtime_change_rotates_key(self, cache, pcap):
        before = AcapCache.key_for(pcap)
        cache.put(pcap, digest_pcap(pcap))
        stat = os.stat(pcap)
        os.utime(pcap, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000_000))
        assert AcapCache.key_for(pcap) != before
        assert cache.get(pcap) is None  # stale entry never served

    def test_content_change_rotates_key(self, cache, tmp_path):
        pcap = write_pcap(tmp_path / "a.pcap", sport=40000)
        before = AcapCache.key_for(pcap)
        stat = os.stat(pcap)
        write_pcap(tmp_path / "a.pcap", sport=40001)
        # Pin size+mtime so only the header hash distinguishes them.
        os.utime(pcap, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        assert AcapCache.key_for(pcap) != before

    def test_same_file_key_is_stable(self, pcap):
        assert AcapCache.key_for(pcap) == AcapCache.key_for(pcap)


class TestInvalidation:
    def test_invalidate_removes_entry(self, cache, pcap):
        cache.put(pcap, digest_pcap(pcap))
        assert cache.invalidate(pcap) is True
        assert cache.get(pcap) is None

    def test_invalidate_without_entry(self, cache, pcap):
        assert cache.invalidate(pcap) is False

    def test_invalidate_missing_pcap(self, cache, tmp_path):
        assert cache.invalidate(tmp_path / "gone.pcap") is False

    def test_clear(self, cache, tmp_path):
        for name in ("a", "b", "c"):
            p = write_pcap(tmp_path / f"{name}.pcap", sport=hash(name) % 1000 + 1024)
            cache.put(p, digest_pcap(p))
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_clear_empty_cache_dir(self, cache):
        assert cache.clear() == 0
        assert len(cache) == 0


class TestCorruption:
    def test_corrupt_entry_dropped_and_missed(self, cache, pcap):
        entry = cache.put(pcap, digest_pcap(pcap))
        entry.write_text("not an acap\n")
        assert cache.get(pcap) is None
        assert not entry.exists()  # corrupt entry evicted
        assert cache.misses == 1
