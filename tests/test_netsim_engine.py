"""Tests for the discrete-event engine."""

import pytest

from repro.netsim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]

    def test_schedule_at_absolute(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_at(12.0, fired.append, "x")
        sim.run()
        assert sim.now == 12.0 and fired == ["x"]

    def test_rejects_past_scheduling(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_at(4.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "no")
        event.cancel()
        sim.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        event.cancel()
        assert sim.pending == 1

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending == 1

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.step()
        event.cancel()
        assert sim.pending == 1

    def test_pending_tracks_fired_events(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(max_events=2)
        assert sim.pending == 3
        sim.run()
        assert sim.pending == 0


class TestRunBounds:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0  # clock lands exactly on `until`

    def test_until_advances_clock_when_queue_empty(self):
        sim = Simulator()
        sim.run(until=9.0)
        assert sim.now == 9.0

    def test_remaining_events_fire_on_next_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        sim.run()
        assert fired == ["b"]

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(i + 1.0, fired.append, i)
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_until_composes_with_exhausted_max_events(self):
        # Regression: run(until=..., max_events=...) used to return from
        # the event cap without honoring the "clock is advanced to
        # exactly `until`" contract.
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(50.0, fired.append, "late")
        sim.run(until=10.0, max_events=5)
        assert fired == ["a", "b"]
        assert sim.now == 10.0  # cap not limiting; clock lands on `until`

    def test_event_cap_before_until_does_not_skip_pending_work(self):
        # When max_events stops the run with events still due before
        # `until`, the clock must NOT jump over them.
        sim = Simulator()
        fired = []
        for i in range(4):
            sim.schedule(i + 1.0, fired.append, i)
        sim.run(until=10.0, max_events=2)
        assert fired == [0, 1]
        assert sim.now == 2.0
        sim.run(until=10.0)  # remaining events still fire in order
        assert fired == [0, 1, 2, 3]
        assert sim.now == 10.0

    def test_event_cap_with_until_advances_when_rest_is_later(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(50.0, fired.append, "late")
        sim.run(until=10.0, max_events=2)
        assert fired == ["a", "b"]
        # The cap stopped the run, but nothing else is due before
        # `until`, so the clock still lands exactly on it.
        assert sim.now == 10.0

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 3
