"""Tests for the discrete-event engine."""

import pytest

from repro.netsim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]

    def test_schedule_at_absolute(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_at(12.0, fired.append, "x")
        sim.run()
        assert sim.now == 12.0 and fired == ["x"]

    def test_rejects_past_scheduling(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_at(4.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "no")
        event.cancel()
        sim.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        event.cancel()
        assert sim.pending == 1

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0


class TestRunBounds:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0  # clock lands exactly on `until`

    def test_until_advances_clock_when_queue_empty(self):
        sim = Simulator()
        sim.run(until=9.0)
        assert sim.now == 9.0

    def test_remaining_events_fire_on_next_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        sim.run()
        assert fired == ["b"]

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(i + 1.0, fired.append, i)
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 3
