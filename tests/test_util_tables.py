"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import Table


class TestTable:
    def make(self):
        t = Table(["name", "value"], title="t")
        t.add_row(["a", 2])
        t.add_row(["b", 1])
        return t

    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Table([])

    def test_row_length_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_column_access(self):
        assert self.make().column("value") == [2, 1]

    def test_sort_by(self):
        t = self.make()
        t.sort_by("value")
        assert t.column("name") == ["b", "a"]

    def test_sort_by_reverse(self):
        t = self.make()
        t.sort_by("value", reverse=True)
        assert t.column("value") == [2, 1]

    def test_csv_round_trip(self, tmp_path):
        t = self.make()
        path = t.to_csv(tmp_path / "sub" / "t.csv")
        loaded = Table.from_csv(path)
        assert loaded.columns == t.columns
        assert loaded.rows == [["a", "2"], ["b", "1"]]  # CSV stringifies

    def test_csv_string(self):
        text = self.make().to_csv_string()
        assert text.splitlines()[0] == "name,value"
        assert "a,2" in text

    def test_render_contains_all_cells(self):
        text = self.make().render()
        for token in ("name", "value", "a", "b", "t"):
            assert token in text

    def test_render_truncation(self):
        t = self.make()
        text = t.render(max_rows=1)
        assert "more rows" in text
        assert "b" not in text.splitlines()[-2]

    def test_float_formatting(self):
        t = Table(["x"])
        t.add_row([0.123456789])
        assert "0.1235" in t.render()
