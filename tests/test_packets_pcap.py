"""Tests for the pcap reader/writer."""

import io
import struct

import pytest

from repro.packets.pcap import (
    LINKTYPE_ETHERNET, PCAP_MAGIC, PcapReader, PcapRecord, PcapWriter,
)


def sample_frame(n=100):
    return bytes(range(256)) * (n // 256 + 1)


class TestPcapRecord:
    def test_orig_len_defaults(self):
        record = PcapRecord(1.0, b"abc")
        assert record.orig_len == 3
        assert not record.truncated

    def test_truncated_flag(self):
        record = PcapRecord(1.0, b"abc", orig_len=1514)
        assert record.truncated

    def test_rejects_orig_smaller_than_data(self):
        with pytest.raises(ValueError):
            PcapRecord(0.0, b"abcd", orig_len=2)


class TestRoundTrip:
    def test_single_record(self):
        buf = io.BytesIO()
        with PcapWriter(buf, snaplen=65535) as writer:
            writer.write(PcapRecord(1.5, b"hello frame" * 10))
        buf.seek(0)
        with PcapReader(buf) as reader:
            records = reader.read_all()
        assert len(records) == 1
        assert records[0].data == b"hello frame" * 10
        assert records[0].timestamp == pytest.approx(1.5, abs=1e-6)

    def test_many_records_order_preserved(self):
        buf = io.BytesIO()
        writer = PcapWriter(buf)
        for i in range(50):
            writer.write(PcapRecord(i * 0.001, bytes([i]) * (60 + i)))
        buf.seek(0)
        records = PcapReader(buf).read_all()
        assert len(records) == 50
        assert [len(r.data) for r in records] == [60 + i for i in range(50)]

    def test_close_flushes_borrowed_handle(self, tmp_path):
        # Regression: close() neither flushed nor closed a caller-owned
        # handle, so buffered writers could leave truncated pcaps on
        # disk while the handle stayed open.
        path = tmp_path / "borrowed.pcap"
        handle = open(path, "wb", buffering=1 << 20)
        try:
            writer = PcapWriter(handle, snaplen=65535)
            for i in range(10):
                writer.write(PcapRecord(float(i), bytes([i]) * 80))
            writer.close()
            assert not handle.closed  # caller still owns the handle
            with open(path, "rb") as readback:
                records = PcapReader(readback).read_all()
            assert len(records) == 10
        finally:
            handle.close()

    def test_context_exit_flushes_borrowed_handle(self, tmp_path):
        path = tmp_path / "ctx.pcap"
        handle = open(path, "wb", buffering=1 << 20)
        try:
            with PcapWriter(handle) as writer:
                writer.write(PcapRecord(0.0, b"\x01" * 64))
            assert not handle.closed
            assert len(PcapReader(path).read_all()) == 1
        finally:
            handle.close()

    def test_close_is_idempotent(self, tmp_path):
        writer = PcapWriter(tmp_path / "owned.pcap")
        writer.write(PcapRecord(0.0, b"\x02" * 64))
        writer.close()
        writer.close()  # second close must not raise on the closed handle
        assert len(PcapReader(tmp_path / "owned.pcap").read_all()) == 1

    def test_snaplen_truncates(self):
        buf = io.BytesIO()
        writer = PcapWriter(buf, snaplen=64)
        writer.write(PcapRecord(0.0, b"\xaa" * 1514))
        buf.seek(0)
        record = next(PcapReader(buf))
        assert len(record.data) == 64
        assert record.orig_len == 1514
        assert record.truncated

    def test_microsecond_precision(self):
        buf = io.BytesIO()
        PcapWriter(buf).write(PcapRecord(123.456789, b"x" * 60))
        buf.seek(0)
        record = next(PcapReader(buf))
        assert record.timestamp == pytest.approx(123.456789, abs=1e-6)

    def test_usec_carry(self):
        # 0.9999995 rounds to 1000000 usec, which must carry to seconds.
        buf = io.BytesIO()
        PcapWriter(buf).write(PcapRecord(0.9999995, b"x" * 60))
        buf.seek(0)
        record = next(PcapReader(buf))
        assert record.timestamp == pytest.approx(1.0, abs=1e-6)

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "capture.pcap"
        with PcapWriter(path, snaplen=200) as writer:
            writer.write(PcapRecord(7.0, sample_frame(300), orig_len=1600))
        with PcapReader(path) as reader:
            assert reader.snaplen == 200
            assert reader.linktype == LINKTYPE_ETHERNET
            records = reader.read_all()
        assert records[0].orig_len == 1600
        assert len(records[0].data) == 200


class TestFormatCompatibility:
    def test_global_header_magic(self):
        buf = io.BytesIO()
        PcapWriter(buf)
        raw = buf.getvalue()
        (magic,) = struct.unpack("!I", raw[:4])
        assert magic == PCAP_MAGIC
        assert len(raw) == 24

    def test_little_endian_files_readable(self):
        # Hand-build a little-endian pcap (what tcpdump on x86 writes).
        buf = io.BytesIO()
        buf.write(struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1))
        frame = b"\x01" * 70
        buf.write(struct.pack("<IIII", 10, 500000, len(frame), len(frame)))
        buf.write(frame)
        buf.seek(0)
        records = PcapReader(buf).read_all()
        assert len(records) == 1
        assert records[0].timestamp == pytest.approx(10.5, abs=1e-6)

    def test_bad_magic_rejected(self):
        buf = io.BytesIO(b"\x00" * 24)
        with pytest.raises(ValueError):
            PcapReader(buf)

    def test_truncated_header_rejected(self):
        with pytest.raises(ValueError):
            PcapReader(io.BytesIO(b"\xa1\xb2"))

    def test_truncated_record_body_rejected_when_strict(self):
        buf = io.BytesIO()
        writer = PcapWriter(buf)
        writer.write(PcapRecord(0.0, b"x" * 60))
        raw = buf.getvalue()[:-10]  # chop the record body
        with pytest.raises(ValueError):
            PcapReader(io.BytesIO(raw), strict=True).read_all()

    def test_truncated_record_body_flagged_by_default(self):
        # A capture killed mid-write must still yield its complete
        # records; the torn tail is dropped and flagged, not fatal.
        buf = io.BytesIO()
        writer = PcapWriter(buf)
        writer.write(PcapRecord(0.0, b"x" * 60))
        writer.write(PcapRecord(1.0, b"y" * 60))
        raw = buf.getvalue()[:-10]  # chop the second record's body
        reader = PcapReader(io.BytesIO(raw))
        records = reader.read_all()
        assert len(records) == 1
        assert records[0].data == b"x" * 60
        assert reader.short_read

    def test_truncated_record_header_flagged_by_default(self):
        buf = io.BytesIO()
        writer = PcapWriter(buf)
        writer.write(PcapRecord(0.0, b"x" * 60))
        raw = buf.getvalue() + b"\x00" * 7  # partial next record header
        reader = PcapReader(io.BytesIO(raw))
        assert len(reader.read_all()) == 1
        assert reader.short_read

    def test_clean_file_not_flagged(self):
        buf = io.BytesIO()
        writer = PcapWriter(buf)
        writer.write(PcapRecord(0.0, b"x" * 60))
        buf.seek(0)
        reader = PcapReader(buf)
        assert len(reader.read_all()) == 1
        assert not reader.short_read

    def test_writer_counts(self):
        buf = io.BytesIO()
        writer = PcapWriter(buf, snaplen=100)
        writer.write(PcapRecord(0.0, b"x" * 300))
        assert writer.records_written == 1
        assert writer.bytes_written == 24 + 16 + 100

    def test_rejects_bad_snaplen(self):
        with pytest.raises(ValueError):
            PcapWriter(io.BytesIO(), snaplen=0)
