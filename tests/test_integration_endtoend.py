"""End-to-end integration: traffic -> Patchwork -> pcaps -> analysis.

These tests exercise the full reproduction stack against the
session-scoped profiled bundle and check the cross-layer invariants
that no unit test can see.
"""

import pytest

from repro.analysis.acap import digest_pcap
from repro.core.status import RunOutcome
from repro.packets.pcap import PcapReader

pytestmark = pytest.mark.slow


class TestProfileToAnalysis:
    def test_every_pcap_is_dissectable(self, profiled_bundle_and_pipeline):
        bundle, _pipeline, _report = profiled_bundle_and_pipeline
        for path in bundle.pcap_paths[:10]:
            acap = digest_pcap(path)
            for record in acap.records:
                assert record.depth >= 1
                assert record.stack[0] == "eth"

    def test_truncation_respected_everywhere(self, profiled_bundle_and_pipeline):
        bundle, _pipeline, _report = profiled_bundle_and_pipeline
        for path in bundle.pcap_paths:
            with PcapReader(path) as reader:
                assert reader.snaplen == 200
                for record in reader:
                    assert len(record.data) <= 200

    def test_wire_lengths_preserved_through_truncation(
            self, profiled_bundle_and_pipeline):
        """orig_len must preserve real frame sizes despite the 200 B cut
        -- this is what makes Fig 15 computable from truncated captures."""
        _bundle, pipeline, _report = profiled_bundle_and_pipeline
        wire_lens = [r.wire_len for acap in pipeline.acaps for r in acap.records]
        assert any(w > 1518 for w in wire_lens)   # jumbo-class frames seen
        assert all(w >= 60 for w in wire_lens)

    def test_frame_sizes_match_generated_traffic(self, profiled_bundle_and_pipeline):
        """Captured frame-size mix is dominated by the encapsulated-MTU
        bin plus small control frames, like the paper's profile."""
        _bundle, _pipeline, report = profiled_bundle_and_pipeline
        table = report.tables["frame_sizes_overall"]
        shares = dict(zip(table.column("size_bin"), table.column("fraction")))
        top = max(shares, key=shares.get)
        assert top in ("1519-2047", "65-127", "8192-16000")

    def test_flow_classification_consistent_with_metadata(
            self, profiled_bundle_and_pipeline):
        """Flows found by the byte-level analysis correspond to real
        generated flows: each has plausible frame counts and sizes."""
        _bundle, _pipeline, report = profiled_bundle_and_pipeline
        for stats in report.aggregated_flows.values():
            assert stats.frames >= 1
            assert stats.wire_bytes >= 60 * stats.frames

    def test_instance_logs_cover_every_sample(self, profiled_bundle_and_pipeline):
        bundle, _pipeline, _report = profiled_bundle_and_pipeline
        for result in bundle.results.values():
            if result.outcome is not RunOutcome.SUCCESS:
                continue
            sample_events = result.log.of_kind("sample")
            assert len(sample_events) >= len(result.samples) / 4

    def test_congestion_verdicts_logged(self, profiled_bundle_and_pipeline):
        bundle, _pipeline, _report = profiled_bundle_and_pipeline
        for result in bundle.results.values():
            if result.samples:
                assert result.log.of_kind("congestion")

    def test_quickstart_helper(self):
        import repro
        federation, api, poller, orchestrator = repro.quickstart_federation(
            site_names=["STAR", "MICH"], traffic_scale=0.02)
        assert api.list_sites() == ["MICH", "STAR"]
        orchestrator.generate_window(0.0, 5.0)
        federation.sim.run(until=6.0)
        assert poller.polls_completed >= 1
