"""Tests for the TestbedAPI facade (Patchwork's only window on FABRIC)."""

import pytest

from repro.testbed.errors import TransientBackendError
from repro.testbed.slice_model import NodeRequest, SliceRequest


def patchwork_request(site):
    return SliceRequest(site=site, nodes=[NodeRequest(name="listener")])


class TestDiscovery:
    def test_list_sites_sorted(self, api):
        sites = api.list_sites()
        assert sites == sorted(sites)
        assert len(sites) == 4

    def test_available_resources(self, api):
        res = api.available_resources("STAR")
        assert res.cores > 0 and res.dedicated_nics >= 2

    def test_list_switch_ports_kinds(self, api):
        kinds = {kind for _pid, kind in api.list_switch_ports("STAR")}
        assert kinds == {"downlink", "uplink"}

    def test_port_rate(self, api):
        pid, _kind = api.list_switch_ports("STAR")[0]
        assert api.port_rate_bps("STAR", pid) == 100e9


class TestTime:
    def test_wait_advances(self, api):
        t0 = api.now
        api.wait(5.0)
        assert api.now == t0 + 5.0

    def test_wait_rejects_negative(self, api):
        with pytest.raises(ValueError):
            api.wait(-1.0)


class TestSlicesAndMirrors:
    def test_slice_lifecycle(self, api):
        live = api.create_slice(patchwork_request("STAR"))
        vm = live.vm("listener")
        assert len(vm.nic_ports) == 2
        api.delete_slice(live.name)
        assert live.deleted

    def test_mirror_lifecycle(self, api):
        live = api.create_slice(patchwork_request("STAR"))
        dest = api.switch_port_for_nic_port("STAR", live.vm("listener").nic_ports[0])
        source = next(pid for pid, kind in api.list_switch_ports("STAR")
                      if kind == "downlink" and pid != dest)
        session = api.create_port_mirror(live, source, dest)
        assert session in live.mirror_sessions
        api.delete_port_mirror(live, session)
        assert live.mirror_sessions == []

    def test_retarget(self, api):
        live = api.create_slice(patchwork_request("STAR"))
        dest = api.switch_port_for_nic_port("STAR", live.vm("listener").nic_ports[0])
        ports = [pid for pid, kind in api.list_switch_ports("STAR")
                 if kind == "downlink" and pid != dest]
        session = api.create_port_mirror(live, ports[0], dest)
        new = api.retarget_port_mirror(live, session, ports[1])
        assert new.source_port_id == ports[1]
        assert new in live.mirror_sessions
        assert session not in live.mirror_sessions

    def test_slice_delete_removes_mirrors(self, api):
        live = api.create_slice(patchwork_request("STAR"))
        dest = api.switch_port_for_nic_port("STAR", live.vm("listener").nic_ports[0])
        source = next(pid for pid, kind in api.list_switch_ports("STAR")
                      if kind == "downlink" and pid != dest)
        api.create_port_mirror(live, source, dest)
        api.delete_slice(live.name)
        assert source not in api.federation.site("STAR").switch.mirrors

    def test_mirror_during_outage_fails(self, api):
        live = api.create_slice(patchwork_request("STAR"))
        api.federation.faults.add_outage(api.now, api.now + 1000.0)
        dest = api.switch_port_for_nic_port("STAR", live.vm("listener").nic_ports[0])
        source = next(pid for pid, kind in api.list_switch_ports("STAR")
                      if kind == "downlink" and pid != dest)
        with pytest.raises(TransientBackendError):
            api.create_port_mirror(live, source, dest)

    def test_simulate_allocation(self, api):
        assert api.simulate_allocation(patchwork_request("STAR")) is None
        big = SliceRequest(site="STAR", nodes=[
            NodeRequest(name=f"n{i}") for i in range(50)])
        assert api.simulate_allocation(big) is not None
