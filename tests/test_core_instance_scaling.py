"""Integration tests: dynamic scaling inside a running instance."""

import numpy as np
import pytest

from repro.core.config import PatchworkConfig, SamplingPlan
from repro.core.instance import PatchworkInstance
from repro.core.scaling import ScalingController
from repro.core.status import RunOutcome
from repro.telemetry import MFlib, SNMPPoller
from repro.testbed import FederationBuilder, TestbedAPI
from repro.traffic.workloads import TrafficOrchestrator


def run_to_completion(federation, instance):
    instance.start()
    deadline = federation.sim.now + 20_000
    while not instance.finished and federation.sim.now < deadline:
        if not federation.sim.step():
            break
    return instance


@pytest.fixture()
def world(tmp_path):
    federation = FederationBuilder(seed=42).build(site_names=["STAR", "MICH"])
    api = TestbedAPI(federation)
    poller = SNMPPoller(federation, interval=5.0)
    poller.start()
    orchestrator = TrafficOrchestrator(federation, seed=7, scale=0.02)
    orchestrator.setup()
    orchestrator.generate_window(0.0, 400.0)
    config = PatchworkConfig(
        output_dir=tmp_path,
        plan=SamplingPlan(sample_duration=2, sample_interval=10,
                          samples_per_run=1, runs_per_cycle=1, cycles=4),
        desired_instances=1,
    )
    return federation, api, poller, config


class TestInstanceScaling:
    def test_instance_grows_when_port_rich(self, world):
        federation, api, poller, config = world
        controller = ScalingController(api, ports_per_slot_threshold=2.0,
                                       max_extra_nodes=2)
        instance = PatchworkInstance(
            api=api, mflib=MFlib(poller.store), config=config, site="STAR",
            poller=poller, rng=np.random.default_rng(0), scaling=controller)
        run_to_completion(federation, instance)
        assert instance.result.outcome is RunOutcome.SUCCESS
        assert controller.grows >= 1
        assert instance.log.of_kind("scaling")
        # Later cycles sample with more slots than the first.
        slots_by_cycle = {}
        for sample in instance.result.samples:
            slots_by_cycle.setdefault(sample.cycle, set()).add(sample.slot)
        assert max(len(v) for v in slots_by_cycle.values()) > \
            len(slots_by_cycle[0])

    def test_all_resources_returned_after_scaled_run(self, world):
        federation, api, poller, config = world
        before = api.available_resources("STAR")
        controller = ScalingController(api, ports_per_slot_threshold=2.0)
        instance = PatchworkInstance(
            api=api, mflib=MFlib(poller.store), config=config, site="STAR",
            poller=poller, rng=np.random.default_rng(0), scaling=controller)
        run_to_completion(federation, instance)
        assert api.available_resources("STAR") == before

    def test_no_scaling_without_controller(self, world):
        federation, api, poller, config = world
        instance = PatchworkInstance(
            api=api, mflib=MFlib(poller.store), config=config, site="STAR",
            poller=poller, rng=np.random.default_rng(0))
        run_to_completion(federation, instance)
        assert instance.log.of_kind("scaling") == []
