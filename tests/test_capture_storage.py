"""Tests for the page-cache write-back model (Fig 14, Appendix B)."""

import pytest

from repro.capture.storage import (
    DEFAULT_BATCH_FRAMES, PageCacheModel, WritevLatencyHistogram,
)


class TestHistogram:
    def test_log2_bucketing(self):
        hist = WritevLatencyHistogram()
        hist.add(40_000)  # falls in (32K, 64K] -> exponent 16
        assert hist.buckets == {16: 1}

    def test_summed_latency_uses_upper_bound(self):
        hist = WritevLatencyHistogram()
        hist.add(40_000)
        # One call in the [32K, 64K] bucket contributes 2**16 ns.
        assert hist.summed_latency_ms() == pytest.approx((1 << 16) * 1e-6)

    def test_floor_excludes_average_case(self):
        hist = WritevLatencyHistogram()
        for _ in range(1000):
            hist.add(5_000)  # ordinary page-cache writes
        assert hist.summed_latency_ms() == 0.0

    def test_merge(self):
        a, b = WritevLatencyHistogram(), WritevLatencyHistogram()
        a.add(40_000)
        b.add(40_000)
        b.add(5_000_000)
        a.merge(b)
        assert a.calls == 3
        assert a.buckets[16] == 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            WritevLatencyHistogram().add(0)


class TestThresholds:
    def test_midpoint(self):
        model = PageCacheModel(dirty_background_ratio=10, dirty_ratio=20)
        assert model.midpoint_fraction == pytest.approx(0.15)

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            PageCacheModel(dirty_background_ratio=20, dirty_ratio=10)

    def test_throttle_budget_paper_example(self):
        """128 GB host, 60:80 thresholds, 8.5 GB/s -> ~8-9 s budget."""
        model = PageCacheModel(ram_gb=128, dirty_background_ratio=60,
                               dirty_ratio=80)
        budget = model.seconds_until_throttle(8.5e9)
        assert 7.0 <= budget <= 10.0

    def test_budget_shrinks_with_dirty_pages(self):
        model = PageCacheModel(dirty_background_ratio=60, dirty_ratio=80)
        fresh = model.seconds_until_throttle(8.5e9)
        model.dirty_bytes = 30e9
        assert model.seconds_until_throttle(8.5e9) < fresh

    def test_budget_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PageCacheModel().seconds_until_throttle(0)


class TestLatencyRegimes:
    def test_quiet_cache_is_fast(self):
        model = PageCacheModel(dirty_background_ratio=60, dirty_ratio=80)
        latencies = [model._sample_latency_ns() for _ in range(200)]
        assert max(latencies) < 10_000

    def test_throttled_regime_stalls(self):
        model = PageCacheModel(dirty_background_ratio=10, dirty_ratio=20)
        model.dirty_bytes = 0.18 * model.free_cache_bytes  # past midpoint
        latencies = [model._sample_latency_ns() for _ in range(2000)]
        assert max(latencies) > 500_000  # millisecond-class stalls appear

    def test_writev_dirties_pages(self):
        model = PageCacheModel()
        model.writev(1 << 20)
        assert model.dirty_bytes == 1 << 20
        assert model.histogram.calls == 1

    def test_flush_only_above_background(self):
        model = PageCacheModel(dirty_background_ratio=10, dirty_ratio=20)
        model.dirty_bytes = 0.05 * model.free_cache_bytes
        before = model.dirty_bytes
        model.flush(1.0)
        assert model.dirty_bytes == before  # below bg: flusher idle
        model.dirty_bytes = 0.12 * model.free_cache_bytes
        before = model.dirty_bytes
        model.flush(1.0)
        assert model.dirty_bytes < before

    def test_flush_rejects_negative_dt(self):
        with pytest.raises(ValueError):
            PageCacheModel().flush(-1.0)


@pytest.mark.slow
class TestFig14Sweep:
    def test_sweep_reproduces_paper_gap(self):
        """At 21 % cache usage, 10:20 vs 20:50 differ by ~2 orders of
        magnitude in summed latency (paper: 3283 ms vs 13 ms)."""
        def at_21(bg, ratio):
            model = PageCacheModel(dirty_background_ratio=bg, dirty_ratio=ratio)
            sweep = model.fill_sweep(max_usage_percent=25)
            return next(p.summed_latency_ms for p in sweep if p.usage_percent == 21)

        tight = at_21(10, 20)
        loose = at_21(20, 50)
        assert tight / loose > 30  # two-ish orders of magnitude
        assert 1000 <= tight <= 15000   # paper: 3283 ms
        assert 1 <= loose <= 100        # paper: 13 ms

    def test_sweep_steep_rise_at_midpoint(self):
        model = PageCacheModel(dirty_background_ratio=10, dirty_ratio=20)
        sweep = {p.usage_percent: p.summed_latency_ms
                 for p in model.fill_sweep(max_usage_percent=25)}
        # Below bg: essentially zero.  Past the midpoint (15 %): huge.
        assert sweep[5] < 10
        assert sweep[18] > 100 * max(sweep[5], 0.001)

    def test_rise_happens_before_dirty_ratio(self):
        """The paper's surprise: throttling begins at the midpoint,
        before dirty_ratio is reached."""
        model = PageCacheModel(dirty_background_ratio=10, dirty_ratio=20)
        sweep = {p.usage_percent: p.summed_latency_ms
                 for p in model.fill_sweep(max_usage_percent=25)}
        assert sweep[17] > 100  # 17 % < dirty_ratio (20 %) yet stalled

    def test_sweep_is_deterministic(self):
        a = PageCacheModel(seed=5).fill_sweep(max_usage_percent=12)
        b = PageCacheModel(seed=5).fill_sweep(max_usage_percent=12)
        assert [p.summed_latency_ms for p in a] == [p.summed_latency_ms for p in b]

    def test_batch_size_convention(self):
        # The paper's writer calls writev once per 128 frames.
        assert DEFAULT_BATCH_FRAMES == 128
