"""Tests for the metric exporters (repro.obs.export)."""

from repro.obs import (
    MetricsRegistry,
    parse_metrics_jsonl,
    parse_prometheus,
    prometheus_name,
    registry_from_snapshot,
    to_metrics_jsonl,
    to_prometheus,
)
from repro.obs.export import histogram_quantile


def make_registry():
    registry = MetricsRegistry()
    registry.counter("digest.frames", help="frames digested").inc(120)
    registry.gauge("recovery.retries").set(3)
    h = registry.histogram("allocator.latency_seconds", buckets=(30.0, 60.0))
    for v in (10.0, 45.0, 99.0):
        h.observe(v)
    return registry


class TestPrometheusName:
    def test_dots_become_underscores(self):
        assert prometheus_name("digest.frames") == "digest_frames"

    def test_leading_digit_prefixed(self):
        assert prometheus_name("5tuple.count") == "_5tuple_count"


class TestPrometheus:
    def test_exposition_shape(self):
        text = to_prometheus(make_registry())
        assert "# TYPE digest_frames counter" in text
        assert "digest_frames 120" in text
        assert "# HELP digest_frames frames digested" in text
        assert 'allocator_latency_seconds_bucket{le="30"} 1' in text
        assert 'allocator_latency_seconds_bucket{le="60"} 2' in text
        assert 'allocator_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "allocator_latency_seconds_count 3" in text

    def test_round_trip(self):
        samples = parse_prometheus(to_prometheus(make_registry()))
        assert samples["digest_frames"] == 120
        assert samples["recovery_retries"] == 3
        assert samples['allocator_latency_seconds_bucket{le="+Inf"}'] == 3
        assert samples["allocator_latency_seconds_sum"] == 154.0

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_volatile_excluded_on_request(self):
        registry = MetricsRegistry()
        registry.gauge("wall_seconds", volatile=True).set(1.0)
        registry.counter("stable").inc()
        text = to_prometheus(registry, include_volatile=False)
        assert "stable" in text and "wall_seconds" not in text


class TestHistogramQuantiles:
    def hist(self, values, buckets=(30.0, 60.0)):
        h = MetricsRegistry().histogram("h", buckets=buckets)
        for v in values:
            h.observe(v)
        return h

    def test_interpolates_within_bucket(self):
        # (10, 45, 99) -> one observation per bucket; the median target
        # of 1.5 lands halfway into the (30, 60] bucket.
        assert histogram_quantile(self.hist((10.0, 45.0, 99.0)), 0.5) == 45.0

    def test_first_bucket_interpolates_from_zero(self):
        assert histogram_quantile(self.hist((10.0, 20.0)), 0.5) == 15.0

    def test_overflow_bucket_reports_highest_finite_bound(self):
        # PromQL's convention: the estimate cannot exceed what the
        # buckets resolve.
        assert histogram_quantile(self.hist((99.0, 99.0)), 0.99) == 60.0

    def test_empty_and_out_of_range(self):
        assert histogram_quantile(self.hist(()), 0.5) is None
        assert histogram_quantile(self.hist((10.0,)), 1.5) is None
        assert histogram_quantile(self.hist((10.0,)), -0.1) is None

    def test_rendered_after_count_line(self):
        lines = to_prometheus(make_registry()).splitlines()
        count = lines.index("allocator_latency_seconds_count 3")
        assert lines[count + 1:count + 4] == [
            'allocator_latency_seconds{quantile="0.5"} 45',
            'allocator_latency_seconds{quantile="0.95"} 60',
            'allocator_latency_seconds{quantile="0.99"} 60',
        ]

    def test_quantiles_survive_snapshot_round_trip(self):
        # Quantiles are derived at render time, so rebuilding from a
        # snapshot must reproduce them exactly (no state was lost).
        registry = make_registry()
        rebuilt = registry_from_snapshot(registry.snapshot())
        wanted = [line for line in to_prometheus(registry).splitlines()
                  if "quantile=" in line]
        assert wanted
        got = [line for line in to_prometheus(rebuilt).splitlines()
               if "quantile=" in line]
        assert got == wanted


class TestMetricsJsonl:
    def test_round_trip(self):
        registry = make_registry()
        parsed = parse_metrics_jsonl(to_metrics_jsonl(registry))
        assert parsed["digest.frames"] == {"kind": "counter", "value": 120}
        assert parsed["recovery.retries"]["value"] == 3
        hist = parsed["allocator.latency_seconds"]
        assert hist["count"] == 3
        assert hist["buckets"] == {"30.0": 1, "60.0": 1, "+Inf": 1}

    def test_lines_are_canonical(self):
        lines = to_metrics_jsonl(make_registry()).splitlines()
        assert all(line == line.strip() and '": ' not in line
                   for line in lines)


class TestRegistryFromSnapshot:
    def test_full_round_trip(self):
        registry = make_registry()
        rebuilt = registry_from_snapshot(registry.snapshot())
        assert rebuilt.snapshot() == registry.snapshot()
        assert to_prometheus(rebuilt).splitlines() == [
            line for line in to_prometheus(registry).splitlines()
            if not line.startswith("# HELP")
        ]

    def test_round_trip_through_canonical_json(self):
        # The journal serializes snapshots with sort_keys=True, which
        # reorders histogram bucket keys lexicographically ("+Inf"
        # first, "120.0" before "30.0").  Rebuilding must recover
        # numeric bound order from that form too.
        import json

        registry = MetricsRegistry()
        h = registry.histogram("allocator.latency_seconds",
                               buckets=(30.0, 60.0, 120.0, 300.0))
        for v in (10.0, 45.0, 250.0, 999.0):
            h.observe(v)
        wire = json.loads(json.dumps(registry.snapshot(), sort_keys=True))
        rebuilt = registry_from_snapshot(wire)
        assert rebuilt.snapshot() == registry.snapshot()
