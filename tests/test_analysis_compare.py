"""Tests for profile comparison / evolution tracking."""

import pytest

from repro.analysis.acap import AcapRecord
from repro.analysis.compare import ProfileHistory, compare_profiles
from repro.analysis.pipeline import ProfileReport
from repro.analysis.report import (
    header_occurrence_table, overall_frame_size_table,
)


def rec(size, stack=("eth", "vlan", "ipv4", "tcp")):
    return AcapRecord(timestamp=0.0, wire_len=size, captured_len=200,
                      stack=tuple(stack), ip_version=4, src="10.0.0.1",
                      dst="10.0.0.2", proto=6, sport=1, dport=2)


def report_from(records, sites=("S0",), ipv6=0.0, jumbo=None,
                flows=(5, 10)):
    report = ProfileReport(
        total_frames=len(records),
        sites=list(sites),
        ipv6_fraction=ipv6,
        jumbo_fraction=(jumbo if jumbo is not None else
                        sum(1 for r in records if r.wire_len >= 1519)
                        / max(1, len(records))),
        flows_per_sample=list(flows),
    )
    report.tables["frame_sizes_overall"] = overall_frame_size_table(records)
    report.tables["header_occurrence"] = header_occurrence_table(records)
    return report


class TestCompare:
    def test_identical_profiles_no_delta(self):
        records = [rec(1544)] * 10 + [rec(100)] * 2
        delta = compare_profiles(report_from(records), report_from(records))
        assert delta.total_variation == pytest.approx(0.0)
        assert not delta.materially_different
        assert delta.protocols_gained == [] and delta.protocols_lost == []

    def test_size_shift_detected(self):
        before = report_from([rec(1544)] * 9 + [rec(100)])
        after = report_from([rec(1544)] * 2 + [rec(100)] * 8)
        delta = compare_profiles(before, after)
        assert delta.total_variation > 0.5
        assert delta.materially_different
        old, new = delta.frame_share_changes["1519-2047"]
        assert old > new

    def test_protocol_changes(self):
        before = report_from([rec(1544)])
        after = report_from([rec(1544, stack=("eth", "vlan", "ipv6", "udp",
                                              "dns"))])
        delta = compare_profiles(before, after)
        assert "dns" in delta.protocols_gained
        assert "tcp" in delta.protocols_lost

    def test_site_changes(self):
        before = report_from([rec(1544)], sites=("S0", "S1"))
        after = report_from([rec(1544)], sites=("S1", "S2"))
        delta = compare_profiles(before, after)
        assert delta.sites_gained == ["S2"]
        assert delta.sites_lost == ["S0"]

    def test_delta_table_renders(self):
        before = report_from([rec(1544)] * 5, ipv6=0.01)
        after = report_from([rec(100)] * 5, ipv6=0.03)
        text = compare_profiles(before, after).to_table().render()
        assert "ipv6 fraction" in text


class TestHistory:
    def build(self, n=3):
        history = ProfileHistory()
        for i in range(n):
            records = [rec(1544)] * (10 + i * 5) + [rec(100)] * 2
            history.add(f"week{i}", report_from(records, ipv6=0.01 * i))
        return history

    def test_series(self):
        history = self.build()
        assert history.series("frames") == [12.0, 17.0, 22.0]
        assert history.series("ipv6") == [0.0, 0.01, 0.02]
        assert len(history.series("share:1519-2047")) == 3
        assert history.series("flows") == [15.0, 15.0, 15.0]

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            self.build().series("entropy")

    def test_trend_table(self):
        table = self.build().trend_table()
        assert len(table.rows) == 3
        assert table.column("occasion") == ["week0", "week1", "week2"]

    def test_latest_delta(self):
        history = self.build()
        delta = history.latest_delta()
        assert delta is not None
        assert delta.ipv6_change == (0.01, 0.02)

    def test_latest_delta_needs_two(self):
        history = ProfileHistory()
        assert history.latest_delta() is None
