"""Tests for traffic distributions."""

import numpy as np
import pytest

from repro.traffic.distributions import (
    JUMBO_THRESHOLD,
    PAPER_FRAME_BINS,
    flow_size_sampler,
    lognormal_sampler,
    pareto_sampler,
    poisson_arrival_times,
)


class TestFrameSizeBins:
    def test_paper_bins_labels(self):
        labels = PAPER_FRAME_BINS.labels()
        assert "1519-2047" in labels
        assert "65-127" in labels
        assert labels[-1] == ">16000"

    def test_index_for_boundaries(self):
        bins = PAPER_FRAME_BINS
        assert bins.label_for(64) == "0-64"
        assert bins.label_for(65) == "65-127"
        assert bins.label_for(127) == "65-127"
        assert bins.label_for(1518) == "1024-1518"
        assert bins.label_for(1519) == "1519-2047"
        assert bins.label_for(99999) == ">16000"

    def test_histogram_counts(self):
        counts = PAPER_FRAME_BINS.histogram([60, 70, 80, 1544, 9000])
        assert counts.sum() == 5
        assert counts[PAPER_FRAME_BINS.index_for(70)] == 2

    def test_shares_sum_to_one(self):
        shares = PAPER_FRAME_BINS.shares([100] * 10 + [1544] * 30)
        assert shares.sum() == pytest.approx(1.0)

    def test_empty_input(self):
        assert PAPER_FRAME_BINS.histogram([]).sum() == 0
        assert PAPER_FRAME_BINS.shares([]).sum() == 0

    def test_jumbo_threshold(self):
        assert JUMBO_THRESHOLD == 1519


class TestSamplers:
    def test_lognormal_median(self):
        rng = np.random.default_rng(0)
        sample = lognormal_sampler(100.0, 0.5)
        values = [sample(rng) for _ in range(4000)]
        assert np.median(values) == pytest.approx(100.0, rel=0.1)

    def test_lognormal_rejects_bad_median(self):
        with pytest.raises(ValueError):
            lognormal_sampler(0, 1)

    def test_pareto_minimum(self):
        rng = np.random.default_rng(0)
        sample = pareto_sampler(1000.0, 1.5)
        values = [sample(rng) for _ in range(1000)]
        assert min(values) >= 1000.0

    def test_pareto_heavy_tail(self):
        rng = np.random.default_rng(0)
        sample = pareto_sampler(1000.0, 0.9)
        values = [sample(rng) for _ in range(5000)]
        assert max(values) > 100 * min(values)

    def test_flow_size_sampler_span(self):
        """Most flows are tiny; the tail reaches the cap region."""
        rng = np.random.default_rng(0)
        sample = flow_size_sampler()
        values = [sample(rng) for _ in range(20000)]
        assert np.median(values) < 1000
        assert max(values) > 1e6
        assert min(values) >= 1

    def test_flow_size_cap(self):
        rng = np.random.default_rng(0)
        sample = flow_size_sampler(tail_probability=1.0, cap=5000)
        assert all(sample(rng) <= 5000 for _ in range(100))

    def test_flow_size_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            flow_size_sampler(tail_probability=1.5)


class TestPoissonArrivals:
    def test_count_near_expectation(self):
        rng = np.random.default_rng(0)
        times = poisson_arrival_times(rng, rate_per_second=50.0, duration=10.0)
        assert 400 <= len(times) <= 600

    def test_sorted_within_window(self):
        rng = np.random.default_rng(0)
        times = poisson_arrival_times(rng, 5.0, 10.0, start=100.0)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 100.0 and times.max() < 110.0

    def test_zero_rate(self):
        rng = np.random.default_rng(0)
        assert len(poisson_arrival_times(rng, 0.0, 10.0)) == 0

    def test_rejects_negative(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_arrival_times(rng, -1.0, 10.0)
