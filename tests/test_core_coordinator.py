"""Tests for the coordinator (Fig 7's end-to-end workflow)."""

import pytest

from repro.core import Coordinator, PatchworkConfig, SamplingPlan
from repro.core.status import RunOutcome
from repro.telemetry import SNMPPoller
from repro.testbed import FederationBuilder, TestbedAPI
from repro.traffic.workloads import TrafficOrchestrator


def plan():
    return SamplingPlan(sample_duration=2, sample_interval=10,
                        samples_per_run=1, runs_per_cycle=1, cycles=1)


@pytest.fixture()
def world(tmp_path):
    federation = FederationBuilder(seed=42).build(
        site_names=["STAR", "MICH", "UTAH"])
    api = TestbedAPI(federation)
    poller = SNMPPoller(federation, interval=5.0)
    poller.start()
    orchestrator = TrafficOrchestrator(federation, seed=7, scale=0.02)
    orchestrator.setup()
    orchestrator.generate_window(0.0, 300.0)
    config = PatchworkConfig(output_dir=tmp_path, plan=plan(),
                             desired_instances=1)
    return federation, api, poller, config


class TestProfileRun:
    def test_all_sites_profiled(self, world):
        federation, api, poller, config = world
        bundle = Coordinator(api, config, poller=poller).run_profile()
        assert set(bundle.results) == {"STAR", "MICH", "UTAH"}
        assert all(r.outcome is RunOutcome.SUCCESS
                   for r in bundle.results.values())

    def test_run_records(self, world):
        federation, api, poller, config = world
        bundle = Coordinator(api, config, poller=poller).run_profile()
        records = bundle.run_records
        assert len(records) == 3
        assert all(r.profiled for r in records)
        assert all(r.pcap_files > 0 for r in records)

    def test_site_restriction(self, world):
        federation, api, poller, config = world
        config.sites = ["MICH"]
        bundle = Coordinator(api, config, poller=poller).run_profile()
        assert set(bundle.results) == {"MICH"}

    def test_resources_yielded_after_occasion(self, world):
        federation, api, poller, config = world
        before = {s: api.available_resources(s) for s in api.list_sites()}
        Coordinator(api, config, poller=poller).run_profile()
        after = {s: api.available_resources(s) for s in api.list_sites()}
        assert before == after

    def test_gather_writes_logs(self, world, tmp_path):
        federation, api, poller, config = world
        bundle = Coordinator(api, config, poller=poller).run_profile()
        written = bundle.write_logs(tmp_path / "logs")
        assert len(written) == 3
        assert all(p.exists() for p in written)

    def test_outcome_counts(self, world):
        federation, api, poller, config = world
        bundle = Coordinator(api, config, poller=poller).run_profile()
        counts = bundle.outcome_counts()
        assert counts[RunOutcome.SUCCESS] == 3
        assert sum(counts.values()) == 3

    def test_pcap_paths_sorted_and_existing(self, world):
        federation, api, poller, config = world
        bundle = Coordinator(api, config, poller=poller).run_profile()
        paths = bundle.pcap_paths
        assert paths == sorted(paths)
        assert all(p.exists() for p in paths)

    def test_two_occasions_back_to_back(self, world):
        federation, api, poller, config = world
        coordinator = Coordinator(api, config, poller=poller)
        first = coordinator.run_profile()
        second = coordinator.run_profile()
        assert coordinator.occasions_run == 2
        assert second.started_at > first.finished_at - 1e-9

    def test_crash_probability_produces_incomplete(self, world):
        federation, api, poller, config = world
        bundle = Coordinator(api, config, poller=poller).run_profile(
            crash_probability=1.0)
        assert all(r.outcome is RunOutcome.INCOMPLETE
                   for r in bundle.results.values())


class TestDeadline:
    @pytest.mark.slow
    def test_stragglers_aborted_at_deadline(self, world):
        """If a site's instance cannot finish inside the coordinator's
        budget, it is aborted and recorded as Incomplete rather than
        hanging the occasion."""
        federation, api, poller, config = world
        config.plan = SamplingPlan(sample_duration=2, sample_interval=1000,
                                   samples_per_run=50, runs_per_cycle=1,
                                   cycles=1)
        coordinator = Coordinator(api, config, poller=poller)
        bundle = coordinator.run_profile(deadline_margin=0.001)
        outcomes = {r.outcome for r in bundle.results.values()}
        assert outcomes == {RunOutcome.INCOMPLETE}
        for result in bundle.results.values():
            assert result.abort_reason == "coordinator deadline reached"
        # Even aborted instances yield their resources back.
        for site in api.list_sites():
            assert api.available_resources(site).dedicated_nics >= 2
