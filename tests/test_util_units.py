"""Tests for repro.util.units."""

import pytest

from repro.util import units


class TestParseRate:
    def test_plain_gbps(self):
        assert units.parse_rate("100Gbps") == 100e9

    def test_decimal_and_spaces(self):
        assert units.parse_rate("8.5 Gbps") == 8.5e9

    def test_mbps(self):
        assert units.parse_rate("250Mbps") == 250e6

    def test_tbps(self):
        assert units.parse_rate("3.968Tbps") == pytest.approx(3.968e12)

    def test_bare_bps(self):
        assert units.parse_rate("42bps") == 42.0

    def test_case_insensitive(self):
        assert units.parse_rate("1GBPS") == 1e9

    def test_numeric_passthrough(self):
        assert units.parse_rate(5e9) == 5e9
        assert units.parse_rate(100) == 100.0

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            units.parse_rate("fast")

    def test_rejects_unknown_suffix(self):
        with pytest.raises(ValueError):
            units.parse_rate("10 parsecs")


class TestParseSize:
    def test_mb(self):
        assert units.parse_size("32MB") == 32_000_000

    def test_binary_prefix(self):
        assert units.parse_size("4KiB") == 4096
        assert units.parse_size("1GiB") == 1 << 30

    def test_bytes(self):
        assert units.parse_size("200B") == 200

    def test_int_passthrough(self):
        assert units.parse_size(1514) == 1514

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            units.parse_size("many")


class TestFormat:
    def test_format_rate_round_trip(self):
        assert units.format_rate(100e9) == "100Gbps"
        assert units.format_rate(8.5e9) == "8.5Gbps"
        assert units.format_rate(1.5e3) == "1.5Kbps"

    def test_format_rate_sub_kbps(self):
        assert units.format_rate(12) == "12bps"

    def test_format_size(self):
        assert units.format_size(32_000_000) == "32MB"
        assert units.format_size(100) == "100B"
        assert units.format_size(2_500_000_000) == "2.5GB"

    @pytest.mark.parametrize("bps, expected", [
        (20e9, "20Gbps"),      # regression: used to strip to "2Gbps"
        (100e9, "100Gbps"),    # regression: used to strip to "1Gbps"
        (200e6, "200Mbps"),
        (1e12, "1Tbps"),
        (3e3, "3Kbps"),
        (10, "10bps"),
        (0, "0bps"),
    ])
    def test_format_rate_precision_zero(self, bps, expected):
        # With precision=0 there is no fractional tail; stripping must
        # never eat trailing zeros of the *integer* part.
        assert units.format_rate(bps, precision=0) == expected

    @pytest.mark.parametrize("num_bytes, expected", [
        (400_000, "400KB"),    # regression: used to strip to "4KB"
        (20_000_000, "20MB"),
        (1_000_000_000, "1GB"),
        (3_000_000_000_000, "3TB"),
    ])
    def test_format_size_precision_zero(self, num_bytes, expected):
        assert units.format_size(num_bytes, precision=0) == expected

    def test_fractional_tail_still_stripped(self):
        assert units.format_rate(1.50e9) == "1.5Gbps"
        assert units.format_rate(2.00e9) == "2Gbps"
        assert units.format_size(1_250_000, precision=3) == "1.25MB"


class TestTransmissionTime:
    def test_basic(self):
        # 1514 bytes at 100 Gbps is ~121 ns.
        t = units.transmission_time(1514, 100e9)
        assert t == pytest.approx(1514 * 8 / 100e9)

    def test_slow_link_is_slower(self):
        assert units.transmission_time(1514, 1e9) > units.transmission_time(1514, 10e9)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            units.transmission_time(100, 0)

    def test_bits_helpers(self):
        assert units.bits(1) == 8.0
        assert units.bytes_per_second(8e9) == 1e9
