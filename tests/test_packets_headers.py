"""Tests for the wire-format headers: pack/parse round trips."""

import struct

import pytest

from repro.packets import headers as hdr
from repro.packets.headers import (
    ARP, DNSHeader, Ethernet, HTTPPayload, ICMP, IPv4, IPv6, MPLS, NTPPayload,
    Payload, PseudoWireControlWord, SSHBanner, TCP, TLSRecord, UDP, VLAN,
    EtherType, IPProto, TCP_ACK, TCP_SYN,
)


class TestAddressHelpers:
    def test_mac_round_trip(self):
        raw = hdr.mac_bytes("aa:bb:cc:dd:ee:0f")
        assert hdr.mac_str(raw) == "aa:bb:cc:dd:ee:0f"

    def test_mac_rejects_short(self):
        with pytest.raises(ValueError):
            hdr.mac_bytes("aa:bb:cc")

    def test_ipv4_round_trip(self):
        assert hdr.ipv4_str(hdr.ipv4_bytes("10.1.2.3")) == "10.1.2.3"

    def test_ipv4_rejects_bad(self):
        with pytest.raises(ValueError):
            hdr.ipv4_bytes("10.1.2")

    def test_ipv6_compressed(self):
        raw = hdr.ipv6_bytes("fd00::1")
        assert len(raw) == 16
        assert hdr.ipv6_str(raw) == "fd00:0:0:0:0:0:0:1"

    def test_ipv6_full(self):
        raw = hdr.ipv6_bytes("1:2:3:4:5:6:7:8")
        assert hdr.ipv6_str(raw) == "1:2:3:4:5:6:7:8"

    def test_ipv6_rejects_bad(self):
        with pytest.raises(ValueError):
            hdr.ipv6_bytes("1:2:3")


class TestEthernet:
    def test_round_trip(self):
        eth = Ethernet(src="02:00:00:00:00:01", dst="02:00:00:00:00:02",
                       ethertype=EtherType.IPV4)
        packed = eth.pack(b"payload")
        fields, consumed, ethertype = Ethernet.parse(memoryview(packed))
        assert consumed == 14
        assert ethertype == EtherType.IPV4
        assert fields["src"] == "02:00:00:00:00:01"
        assert fields["dst"] == "02:00:00:00:00:02"
        assert packed[14:] == b"payload"

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            Ethernet.parse(memoryview(b"\x00" * 10))


class TestVLAN:
    def test_round_trip(self):
        packed = VLAN(vid=301, pcp=5, ethertype=EtherType.IPV6).pack(b"")
        fields, consumed, ethertype = VLAN.parse(memoryview(packed))
        assert (fields["vid"], fields["pcp"]) == (301, 5)
        assert ethertype == EtherType.IPV6
        assert consumed == 4

    def test_vid_range_checked(self):
        with pytest.raises(ValueError):
            VLAN(vid=4096).pack(b"")


class TestMPLS:
    def test_round_trip(self):
        packed = MPLS(label=16001, tc=3, bottom=True, ttl=42).pack(b"")
        fields, consumed, bottom = MPLS.parse(memoryview(packed))
        assert fields["label"] == 16001
        assert fields["tc"] == 3
        assert fields["ttl"] == 42
        assert bottom is True

    def test_not_bottom(self):
        packed = MPLS(label=5, bottom=False).pack(b"")
        _fields, _consumed, bottom = MPLS.parse(memoryview(packed))
        assert bottom is False

    def test_label_range(self):
        with pytest.raises(ValueError):
            MPLS(label=1 << 20).pack(b"")


class TestPseudoWire:
    def test_round_trip(self):
        packed = PseudoWireControlWord(sequence=77).pack(b"")
        fields, consumed, _ = PseudoWireControlWord.parse(memoryview(packed))
        assert fields["sequence"] == 77
        assert consumed == 4

    def test_first_nibble_zero(self):
        packed = PseudoWireControlWord().pack(b"")
        assert packed[0] >> 4 == 0

    def test_rejects_nonzero_nibble(self):
        with pytest.raises(ValueError):
            PseudoWireControlWord.parse(memoryview(b"\x40\x00\x00\x00"))


class TestIPv4:
    def test_round_trip(self):
        ip = IPv4(src="10.0.0.1", dst="10.0.0.2", proto=IPProto.TCP, ttl=17)
        packed = ip.pack(b"x" * 30)
        fields, consumed, proto = IPv4.parse(memoryview(packed))
        assert consumed == 20
        assert proto == IPProto.TCP
        assert fields["src"] == "10.0.0.1"
        assert fields["dst"] == "10.0.0.2"
        assert fields["ttl"] == 17
        assert fields["total_len"] == 50

    def test_header_checksum_valid(self):
        from repro.packets.checksum import internet_checksum
        packed = IPv4(src="10.0.0.1", dst="10.0.0.2").pack(b"")
        # A correct IPv4 header checksums to zero over its 20 bytes.
        assert internet_checksum(packed[:20]) == 0

    def test_rejects_non_v4(self):
        packed = bytearray(IPv4(src="1.2.3.4", dst="5.6.7.8").pack(b""))
        packed[0] = (6 << 4) | 5
        with pytest.raises(ValueError):
            IPv4.parse(memoryview(bytes(packed)))

    def test_size_limit(self):
        with pytest.raises(ValueError):
            IPv4(src="1.2.3.4", dst="5.6.7.8").pack(b"x" * 70000)


class TestIPv6:
    def test_round_trip(self):
        ip = IPv6(src="fd00::1", dst="fd00::2", next_header=IPProto.UDP)
        packed = ip.pack(b"y" * 11)
        fields, consumed, proto = IPv6.parse(memoryview(packed))
        assert consumed == 40
        assert proto == IPProto.UDP
        assert fields["payload_len"] == 11
        assert fields["src"].endswith(":1")


class TestTCP:
    def test_round_trip_with_checksum(self):
        ip_src = hdr.ipv4_bytes("10.0.0.1")
        ip_dst = hdr.ipv4_bytes("10.0.0.2")
        packed = TCP(sport=443, dport=51000, seq=9, ack=4,
                     flags=TCP_ACK | TCP_SYN).pack(b"abc", ip_src, ip_dst)
        fields, consumed, ports = TCP.parse(memoryview(packed))
        assert consumed == 20
        assert ports == (443, 51000)
        assert fields["syn"] and not fields["rst"]
        assert fields["seq"] == 9

    def test_transport_checksum_validates(self):
        from repro.packets.checksum import internet_checksum, pseudo_header_v4
        ip_src = hdr.ipv4_bytes("10.0.0.1")
        ip_dst = hdr.ipv4_bytes("10.0.0.2")
        segment = TCP(sport=1, dport=2).pack(b"hello", ip_src, ip_dst)
        pseudo = pseudo_header_v4(ip_src, ip_dst, IPProto.TCP, len(segment))
        assert internet_checksum(pseudo + segment) == 0

    @staticmethod
    def _payload_forcing_zero_checksum(tcp: TCP, ip_src: bytes,
                                       ip_dst: bytes) -> bytes:
        """A payload whose segment checksum computes to exactly 0x0000."""
        from repro.packets.checksum import ones_complement_sum, pseudo_header_v4
        payload = bytearray(8)
        segment = tcp.pack(bytes(payload))  # checksum field still zero
        pseudo = pseudo_header_v4(ip_src, ip_dst, IPProto.TCP, len(segment))
        total = ones_complement_sum(pseudo + segment)
        # One's-complement sum of exactly 0xFFFF inverts to checksum 0;
        # steer the first (currently zero) payload word there.
        payload[0:2] = struct.pack("!H", 0xFFFF - total)
        return bytes(payload)

    def test_tcp_zero_checksum_round_trip(self):
        # Regression: a TCP segment whose checksum computes to 0x0000
        # used to be emitted with 0xFFFF (the UDP-only substitution).
        from repro.packets.checksum import internet_checksum, pseudo_header_v4
        from repro.analysis.dissect import Dissector
        ip_src = hdr.ipv4_bytes("10.0.0.1")
        ip_dst = hdr.ipv4_bytes("10.0.0.2")
        tcp = TCP(sport=4000, dport=5000, seq=1, ack=2)
        payload = self._payload_forcing_zero_checksum(tcp, ip_src, ip_dst)
        segment = tcp.pack(payload, ip_src, ip_dst)
        assert segment[16:18] == b"\x00\x00"
        # The emitted segment still verifies under RFC 1071.
        pseudo = pseudo_header_v4(ip_src, ip_dst, IPProto.TCP, len(segment))
        assert internet_checksum(pseudo + segment) == 0
        # And a full frame survives dissection with its fields intact.
        frame = Ethernet(src="02:00:00:00:00:01", dst="02:00:00:00:00:02").pack(
            IPv4(src="10.0.0.1", dst="10.0.0.2", proto=IPProto.TCP).pack(segment))
        dissected = Dissector().dissect(frame)
        tcp_info = dissected.first("tcp")
        assert tcp_info is not None
        assert (tcp_info.fields["sport"], tcp_info.fields["dport"]) == (4000, 5000)
        assert not dissected.truncated


class TestUDP:
    def test_round_trip(self):
        packed = UDP(sport=53, dport=3333).pack(b"q" * 5)
        fields, consumed, ports = UDP.parse(memoryview(packed))
        assert consumed == 8
        assert ports == (53, 3333)
        assert fields["length"] == 13


class TestICMP:
    def test_round_trip(self):
        packed = ICMP(icmp_type=8, code=0, ident=3, sequence=4).pack(b"ping")
        fields, consumed, _ = ICMP.parse(memoryview(packed))
        assert fields["type"] == 8
        assert consumed == 8

    def test_checksum_valid(self):
        from repro.packets.checksum import internet_checksum
        packed = ICMP().pack(b"data")
        assert internet_checksum(packed) == 0


class TestARP:
    def test_round_trip(self):
        arp = ARP(sender_mac="02:00:00:00:00:01", sender_ip="10.0.0.1",
                  target_ip="10.0.0.2", opcode=1)
        fields, consumed, _ = ARP.parse(memoryview(arp.pack()))
        assert consumed == 28
        assert fields["sender_ip"] == "10.0.0.1"
        assert fields["opcode"] == 1


class TestApplicationHeaders:
    def test_tls_round_trip(self):
        packed = TLSRecord(content_type=23).pack(b"\x00" * 48)
        fields, consumed, _ = TLSRecord.parse(memoryview(packed))
        assert fields["content_type"] == 23
        assert fields["length"] == 48
        assert consumed == 5

    def test_tls_rejects_non_tls(self):
        with pytest.raises(ValueError):
            TLSRecord.parse(memoryview(b"GET / HTTP/1.1\r\n"))

    def test_ssh_banner(self):
        packed = SSHBanner(software="OpenSSH_9.9").pack()
        fields, _consumed, _ = SSHBanner.parse(memoryview(packed))
        assert "OpenSSH_9.9" in fields["banner"]

    def test_ssh_rejects(self):
        with pytest.raises(ValueError):
            SSHBanner.parse(memoryview(b"\x16\x03\x03"))

    def test_dns_round_trip(self):
        packed = DNSHeader(ident=99, qname="example.org").pack()
        fields, consumed, _ = DNSHeader.parse(memoryview(packed))
        assert fields["ident"] == 99
        assert fields["qdcount"] == 1
        assert consumed == 12

    def test_dns_response_flag(self):
        packed = DNSHeader(response=True).pack()
        fields, _c, _ = DNSHeader.parse(memoryview(packed))
        assert fields["response"] is True

    def test_http_request(self):
        packed = HTTPPayload(method="POST", path="/x").pack()
        fields, _c, _ = HTTPPayload.parse(memoryview(packed))
        assert fields == {"response": False, "method": "POST"}

    def test_http_response(self):
        packed = HTTPPayload(response=True, status=404).pack()
        fields, _c, _ = HTTPPayload.parse(memoryview(packed))
        assert fields["status"] == 404

    def test_http_rejects(self):
        with pytest.raises(ValueError):
            HTTPPayload.parse(memoryview(b"\x00\x01binary"))

    def test_ntp_round_trip(self):
        packed = NTPPayload(mode=3).pack()
        assert len(packed) == 48
        fields, consumed, _ = NTPPayload.parse(memoryview(packed))
        assert fields["mode"] == 3
        assert consumed == 48

    def test_payload_fill(self):
        packed = Payload(5, fill=0xAB).pack()
        assert packed == b"\xab" * 5
