"""Tests for Patchwork configuration."""

from pathlib import Path

import pytest

from repro.core.config import PatchworkConfig, SamplingPlan


class TestSamplingPlan:
    def test_paper_defaults(self):
        """Defaults are the production settings: 20 s samples every 5 min."""
        plan = SamplingPlan()
        assert plan.sample_duration == 20.0
        assert plan.sample_interval == 300.0

    def test_total_samples(self):
        plan = SamplingPlan(samples_per_run=3, runs_per_cycle=2, cycles=4)
        assert plan.total_samples == 24

    def test_approximate_duration(self):
        plan = SamplingPlan(sample_interval=300, samples_per_run=2,
                            runs_per_cycle=1, cycles=1)
        assert plan.approximate_duration == 600

    def test_interval_must_cover_sample(self):
        with pytest.raises(ValueError):
            SamplingPlan(sample_duration=30, sample_interval=20)

    def test_positive_counts(self):
        with pytest.raises(ValueError):
            SamplingPlan(samples_per_run=0)

    def test_positive_duration(self):
        with pytest.raises(ValueError):
            SamplingPlan(sample_duration=0)


class TestPatchworkConfig:
    def test_defaults_match_paper(self):
        config = PatchworkConfig()
        assert config.snaplen == 200              # 200 B truncation
        assert config.capture_method.value == "tcpdump"  # the default method
        assert config.selector == "busiest-bias"

    def test_output_dir_coerced(self):
        config = PatchworkConfig(output_dir="somewhere/out")
        assert isinstance(config.output_dir, Path)

    def test_single_experiment_needs_slice(self):
        with pytest.raises(ValueError):
            PatchworkConfig(all_experiment=False)

    def test_single_experiment_with_slice(self):
        config = PatchworkConfig(all_experiment=False, slice_name="mine")
        assert config.slice_name == "mine"

    def test_snaplen_positive(self):
        with pytest.raises(ValueError):
            PatchworkConfig(snaplen=0)

    def test_instances_positive(self):
        with pytest.raises(ValueError):
            PatchworkConfig(desired_instances=0)
