"""Tests for control-plane fault injection (outage windows and
scheduled mid-run faults)."""

import pytest

from repro.telemetry.snmp import SNMPPoller
from repro.testbed.errors import TransientBackendError, is_retryable
from repro.testbed.faults import FaultInjector, OutageWindow
from repro.testbed.slice_model import NodeRequest, SliceRequest


def request(site, nodes=1):
    return SliceRequest(
        site=site,
        nodes=[NodeRequest(name=f"listener{i}") for i in range(nodes)],
    )


class TestOutageWindow:
    def test_start_inclusive_end_exclusive(self):
        window = OutageWindow(10.0, 20.0)
        assert window.covers(10.0, "STAR")
        assert window.covers(19.999, "STAR")
        assert not window.covers(20.0, "STAR")
        assert not window.covers(9.999, "STAR")

    def test_global_window_covers_every_site(self):
        window = OutageWindow(0.0, 5.0)
        assert window.covers(1.0, "STAR")
        assert window.covers(1.0, "anything")

    def test_site_scoped_window(self):
        window = OutageWindow(0.0, 5.0, sites={"STAR", "MICH"})
        assert window.covers(1.0, "STAR")
        assert window.covers(1.0, "MICH")
        assert not window.covers(1.0, "UTAH")

    def test_overlapping_windows_first_reason_wins(self):
        faults = FaultInjector()
        faults.add_outage(0.0, 10.0, reason="incident A")
        faults.add_outage(5.0, 15.0, reason="incident B")
        assert faults.failure_reason(7.0, "STAR") == "incident A"
        assert faults.failure_reason(12.0, "STAR") == "incident B"
        assert faults.failure_reason(20.0, "STAR") is None

    def test_add_outage_validation(self):
        faults = FaultInjector()
        with pytest.raises(ValueError):
            faults.add_outage(10.0, 10.0)
        with pytest.raises(ValueError):
            faults.add_outage(10.0, 5.0)

    def test_injected_failures_counted(self):
        faults = FaultInjector()
        faults.add_outage(0.0, 10.0)
        faults.failure_reason(1.0, "STAR")
        faults.failure_reason(2.0, "STAR")
        faults.failure_reason(99.0, "STAR")
        assert faults.injected_failures == 2

    def test_transient_errors_are_retryable(self):
        exc = TransientBackendError("STAR: incident")
        assert is_retryable(exc)
        assert not is_retryable(ValueError("nope"))


class TestScheduledVmDeath:
    def test_vm_vanishes_from_worker_but_not_slice(self, api):
        live = api.create_slice(request("STAR", nodes=2))
        sim = api.federation.sim
        fault = api.federation.faults.schedule_vm_death(
            sim, live, sim.now + 10.0)
        sim.run(until=sim.now + 20.0)
        assert fault.fired
        assert fault.outcome.startswith("killed")
        hosted = [vm for vm in live.vms.values() if vm.name in vm.worker.vms]
        assert len(live.vms) == 2       # still listed in the slice
        assert len(hosted) == 1          # but one host lost it
        assert api.federation.faults.mid_run_faults_fired == 1

    def test_named_victim(self, api):
        live = api.create_slice(request("STAR", nodes=2))
        sim = api.federation.sim
        fault = api.federation.faults.schedule_vm_death(
            sim, live, sim.now + 5.0, vm_name="listener1")
        sim.run(until=sim.now + 10.0)
        assert "listener1" in fault.outcome
        vm = live.vm("listener0")
        assert vm.name in vm.worker.vms

    def test_noop_when_slice_deleted_first(self, api):
        live = api.create_slice(request("STAR"))
        sim = api.federation.sim
        fault = api.federation.faults.schedule_vm_death(
            sim, live, sim.now + 10.0)
        api.delete_slice(live.name)
        sim.run(until=sim.now + 20.0)
        assert fault.fired
        assert fault.outcome == "no-op"
        assert api.federation.faults.mid_run_faults_fired == 0

    def test_delete_slice_tolerates_dead_vm(self, api):
        live = api.create_slice(request("STAR", nodes=2))
        sim = api.federation.sim
        api.federation.faults.schedule_vm_death(sim, live, sim.now + 5.0)
        sim.run(until=sim.now + 10.0)
        api.delete_slice(live.name)   # must not raise
        assert live.deleted

    def test_cannot_schedule_in_the_past(self, api):
        live = api.create_slice(request("STAR"))
        sim = api.federation.sim
        sim.run(until=100.0)
        with pytest.raises(ValueError):
            api.federation.faults.schedule_vm_death(sim, live, 50.0)


class TestScheduledMirrorDrop:
    def _mirrored(self, api):
        live = api.create_slice(request("STAR"))
        dest = api.switch_port_for_nic_port(
            "STAR", live.vm("listener0").nic_ports[0])
        source = next(pid for pid, kind in api.list_switch_ports("STAR")
                      if kind == "downlink" and pid != dest)
        session = api.create_port_mirror(live, source, dest)
        return live, source, session

    def test_session_dropped(self, api):
        live, source, _session = self._mirrored(api)
        sim = api.federation.sim
        switch = api.federation.site("STAR").switch
        fault = api.federation.faults.schedule_mirror_drop(
            sim, "STAR", switch, sim.now + 5.0)
        sim.run(until=sim.now + 10.0)
        assert fault.outcome == f"dropped mirror on {source}"
        assert source not in switch.mirrors

    def test_noop_when_nothing_mirrored(self, api):
        sim = api.federation.sim
        switch = api.federation.site("STAR").switch
        fault = api.federation.faults.schedule_mirror_drop(
            sim, "STAR", switch, sim.now + 5.0)
        sim.run(until=sim.now + 10.0)
        assert fault.outcome == "no-op"

    def test_retarget_heals_dropped_session(self, api):
        live, source, session = self._mirrored(api)
        sim = api.federation.sim
        switch = api.federation.site("STAR").switch
        api.federation.faults.schedule_mirror_drop(
            sim, "STAR", switch, sim.now + 5.0, source_port_id=source)
        sim.run(until=sim.now + 10.0)
        assert source not in switch.mirrors
        new_source = next(
            pid for pid, kind in api.list_switch_ports("STAR")
            if kind == "downlink"
            and pid not in (source, session.dest_port_id))
        healed = api.retarget_port_mirror(live, session, new_source)
        assert healed.source_port_id == new_source
        assert new_source in switch.mirrors

    def test_delete_dropped_session_is_noop(self, api):
        live, source, session = self._mirrored(api)
        sim = api.federation.sim
        switch = api.federation.site("STAR").switch
        api.federation.faults.schedule_mirror_drop(
            sim, "STAR", switch, sim.now + 5.0, source_port_id=source)
        sim.run(until=sim.now + 10.0)
        api.delete_port_mirror(live, session)   # must not raise
        assert session not in live.mirror_sessions


class TestScheduledPollerOutage:
    def test_poller_silenced_and_restored(self, federation):
        poller = SNMPPoller(federation, interval=10.0)
        poller.start()
        sim = federation.sim
        fault = federation.faults.schedule_poller_outage(
            sim, poller, start=20.0, duration=50.0)
        sim.run(until=30.0)
        assert fault.fired
        assert not poller.running
        sim.run(until=100.0)
        assert poller.running

    def test_duration_validation(self, federation):
        poller = SNMPPoller(federation, interval=10.0)
        with pytest.raises(ValueError):
            federation.faults.schedule_poller_outage(
                federation.sim, poller, start=0.0, duration=0.0)


class TestIdempotentTeardown:
    def test_double_delete_slice(self, api):
        live = api.create_slice(request("STAR"))
        api.delete_slice(live.name)
        api.delete_slice(live.name)   # no KeyError, no state change
        assert live.deleted

    def test_double_delete_mirror(self, api):
        live = api.create_slice(request("STAR"))
        dest = api.switch_port_for_nic_port(
            "STAR", live.vm("listener0").nic_ports[0])
        source = next(pid for pid, kind in api.list_switch_ports("STAR")
                      if kind == "downlink" and pid != dest)
        session = api.create_port_mirror(live, source, dest)
        api.delete_port_mirror(live, session)
        api.delete_port_mirror(live, session)   # idempotent
        assert live.mirror_sessions == []

    def test_teardown_respects_outage_windows(self, api):
        live = api.create_slice(request("STAR"))
        sim = api.federation.sim
        api.federation.faults.add_outage(sim.now, sim.now + 100.0,
                                         sites={"STAR"})
        with pytest.raises(TransientBackendError):
            api.delete_slice(live.name)
        sim.run(until=sim.now + 200.0)
        api.delete_slice(live.name)
        assert live.deleted
