"""Tests for the resilient control-plane client (retry + breaker)."""

import numpy as np
import pytest

from repro.core.logs import InstanceLog
from repro.core.retry import (
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    ResilientAPI,
    RetryPolicy,
)
from repro.obs import Observability, scoped
from repro.testbed import TestbedAPI
from repro.testbed.errors import AllocationError, TransientBackendError
from repro.testbed.slice_model import NodeRequest, SliceRequest


def request(site, nodes=1):
    return SliceRequest(
        site=site,
        nodes=[NodeRequest(name=f"listener{i}") for i in range(nodes)],
    )


class TestRetryPolicy:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base_delay=10.0, max_delay=40.0, multiplier=2.0,
                             jitter=0.0)
        assert policy.delay(1) == 10.0
        assert policy.delay(2) == 20.0
        assert policy.delay(3) == 40.0
        assert policy.delay(4) == 40.0   # capped

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay=100.0, max_delay=100.0, jitter=0.5)
        rng = np.random.default_rng(7)
        delays = [policy.delay(1, rng) for _ in range(200)]
        assert all(75.0 <= d <= 125.0 for d in delays)
        assert len(set(delays)) > 100   # actually jittered

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(base_delay=10.0, jitter=0.5)
        assert policy.delay(1) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=10.0, max_delay=5.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=100.0)
        assert breaker.state(0.0) is BreakerState.CLOSED
        assert not breaker.record_failure(1.0)
        assert not breaker.record_failure(2.0)
        assert breaker.record_failure(3.0)   # third opens
        assert breaker.state(3.0) is BreakerState.OPEN
        assert breaker.opens == 1

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(threshold=3, cooldown=100.0)
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        breaker.record_success()
        breaker.record_failure(3.0)
        breaker.record_failure(4.0)
        assert breaker.state(4.0) is BreakerState.CLOSED

    def test_open_rejects_until_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown=100.0)
        breaker.record_failure(10.0)
        assert not breaker.allow(50.0)
        assert breaker.rejections == 1
        assert breaker.retry_after(50.0) == 60.0

    def test_half_open_single_probe(self):
        breaker = CircuitBreaker(threshold=1, cooldown=100.0)
        breaker.record_failure(0.0)
        assert breaker.state(100.0) is BreakerState.HALF_OPEN
        assert breaker.allow(100.0)       # the probe
        assert not breaker.allow(100.0)   # but only one

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, cooldown=100.0)
        breaker.record_failure(0.0)
        assert breaker.allow(100.0)
        breaker.record_success()
        assert breaker.state(100.0) is BreakerState.CLOSED
        assert breaker.allow(100.0)

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=100.0)
        breaker.record_failure(0.0)
        assert breaker.allow(100.0)
        assert breaker.record_failure(100.0)
        assert breaker.state(150.0) is BreakerState.OPEN
        assert breaker.retry_after(150.0) == 50.0
        assert breaker.opens == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0.0)


@pytest.fixture()
def resilient(federation):
    api = TestbedAPI(federation)
    wrapped = ResilientAPI(
        api,
        policy=RetryPolicy(max_attempts=4, base_delay=20.0, max_delay=80.0,
                           jitter=0.5, deadline=600.0),
        breaker_threshold=3,
        breaker_cooldown=60.0,
        log=InstanceLog("STAR", "retry-test"),
        rng=np.random.default_rng(11),
    )
    return federation, wrapped


class TestResilientAPI:
    def test_readonly_calls_delegate(self, resilient):
        federation, wrapped = resilient
        assert wrapped.list_sites() == sorted(federation.site_names())
        assert wrapped.now == federation.sim.now
        assert wrapped.inner.__class__ is TestbedAPI

    def test_success_without_faults_is_transparent(self, resilient):
        _federation, wrapped = resilient
        live = wrapped.create_slice(request("STAR"))
        wrapped.delete_slice(live.name)
        assert wrapped.stats.calls == 2
        assert wrapped.stats.retries == 0

    def test_retries_wait_out_outage_in_sim_time(self, resilient):
        federation, wrapped = resilient
        sim = federation.sim
        federation.faults.add_outage(0.0, 120.0, sites={"STAR"})
        live = wrapped.create_slice(request("STAR"))
        assert live is not None
        assert wrapped.stats.retries >= 1
        assert sim.now >= 120.0   # the delays were spent as sim time
        # jittered retries never collapse onto one instant
        times = [e.time for e in wrapped.log.events
                 if e.kind == "retry" and "retrying" in e.message]
        assert times and len(times) == len(set(times))

    def test_nonretryable_errors_pass_through(self, resilient):
        _federation, wrapped = resilient
        with pytest.raises(AllocationError):
            wrapped.create_slice(request("STAR", nodes=99))
        assert wrapped.stats.retries == 0

    def test_gives_up_after_max_attempts(self, resilient):
        federation, wrapped = resilient
        federation.faults.add_outage(0.0, 1e7, sites={"STAR"})
        with pytest.raises(TransientBackendError):
            wrapped.create_slice(request("STAR"))
        assert wrapped.stats.giveups == 1
        assert wrapped.stats.transient_failures >= 1

    def test_breaker_opens_under_persistent_outage(self, resilient):
        federation, wrapped = resilient
        federation.faults.add_outage(0.0, 1e9, sites={"STAR"})
        with pytest.raises(TransientBackendError):
            wrapped.create_slice(request("STAR"))
        assert wrapped.stats.breaker_opens >= 1
        assert wrapped.breaker_for("STAR").opened_at is not None

    def test_open_breaker_rejects_client_side_when_budget_too_short(
            self, federation):
        # A deadline shorter than the breaker cooldown cannot wait for
        # the half-open probe, so the call is rejected without ever
        # touching the backend.
        api = TestbedAPI(federation)
        wrapped = ResilientAPI(
            api,
            policy=RetryPolicy(max_attempts=3, base_delay=1.0, max_delay=2.0,
                               jitter=0.0, deadline=10.0),
            breaker_threshold=1, breaker_cooldown=500.0,
        )
        breaker = wrapped.breaker_for("STAR")
        breaker.record_failure(federation.sim.now)   # pre-opened
        injector = federation.faults
        backend_calls = injector.injected_failures
        with pytest.raises(CircuitOpenError):
            wrapped.create_slice(request("STAR"))
        assert injector.injected_failures == backend_calls
        assert wrapped.stats.breaker_rejections >= 1
        assert wrapped.stats.giveups == 1

    def test_breakers_are_per_site(self, resilient):
        federation, wrapped = resilient
        federation.faults.add_outage(0.0, 1e9, sites={"STAR"})
        with pytest.raises(TransientBackendError):
            wrapped.create_slice(request("STAR"))
        assert wrapped.breaker_for("STAR").opened_at is not None
        # A healthy site is unaffected.
        live = wrapped.create_slice(request("MICH"))
        assert live is not None
        assert wrapped.breaker_for("MICH").consecutive_failures == 0

    def test_breaker_probe_after_cooldown_recovers(self, resilient):
        federation, wrapped = resilient
        sim = federation.sim
        federation.faults.add_outage(0.0, 400.0, sites={"STAR"})
        with pytest.raises(TransientBackendError):
            wrapped.create_slice(request("STAR"))
        sim.run(until=500.0)   # outage over, breaker cooled down
        live = wrapped.create_slice(request("STAR"))
        assert live is not None
        assert wrapped.breaker_for("STAR").state(sim.now) is BreakerState.CLOSED


class TestJournalSchema:
    """RL009 regression: one key set per ``breaker`` event kind.

    The open transition always carried ``failures`` but the closed one
    once did not, so consumers keying on ``failures`` broke on recovery
    events.  Pin the canonical schema -- and that a close resets the
    streak to 0 -- so the drift cannot come back."""

    CANONICAL_KEYS = {"site", "state", "label", "failures"}

    def test_open_and_close_share_one_key_set(self, federation):
        sim = federation.sim
        federation.faults.add_outage(0.0, 400.0, sites={"STAR"})
        with scoped(Observability.create(sim=sim)) as obs:
            wrapped = ResilientAPI(
                TestbedAPI(federation),
                policy=RetryPolicy(max_attempts=4, base_delay=20.0,
                                   max_delay=80.0, jitter=0.5,
                                   deadline=600.0),
                breaker_threshold=3, breaker_cooldown=60.0,
                rng=np.random.default_rng(11),
            )
            with pytest.raises(TransientBackendError):
                wrapped.create_slice(request("STAR"))      # opens
            sim.run(until=500.0)   # outage over, breaker cooled down
            wrapped.create_slice(request("STAR"))          # probe closes
        events = obs.journal.of_kind("breaker")
        assert {e.data["state"] for e in events} == {"open", "closed"}
        assert events[-1].data["state"] == "closed"
        for event in events:
            assert set(event.data) == self.CANONICAL_KEYS
        assert events[-1].data["failures"] == 0
        assert events[0].data["failures"] >= 3
