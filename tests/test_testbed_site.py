"""Tests for the Site aggregate."""

import pytest

from repro.netsim.engine import Simulator
from repro.testbed.hosts import Worker
from repro.testbed.nic import DedicatedNIC, FPGANic, SharedNIC
from repro.testbed.site import Site


@pytest.fixture()
def site():
    sim = Simulator()
    s = Site(sim, "STAR")
    w0 = s.add_worker(Worker("w0", "STAR", cores=16, ram_gb=64, disk_gb=500))
    w1 = s.add_worker(Worker("w1", "STAR", cores=8, ram_gb=32, disk_gb=200))
    s.install_nic(w0, DedicatedNIC("dn0"))
    s.install_nic(w0, SharedNIC("sn0", vf_slots=10))
    s.install_nic(w1, FPGANic("fpga0"))
    return s


class TestConstruction:
    def test_nic_ports_cabled_to_switch(self, site):
        # dn0 has 2 ports, sn0 has 1, fpga0 has 2 -> 5 downlinks.
        assert len(site.switch.downlinks()) == 5
        for nic in (site.dedicated_nics[0], site.shared_nics[0],
                    site.fpga_nics[0]):
            for port in nic.ports:
                port_id = site.switch_port_for(port)
                assert port_id in site.switch.ports
                assert site.switch.ports[port_id].attached_to == port.name

    def test_uplink_ports(self, site):
        port = site.add_uplink_port(rate_bps=25e9)
        assert port.kind == "uplink"
        assert port.rate_bps == 25e9
        assert len(site.switch.uplinks()) == 1

    def test_nic_categorization(self, site):
        assert len(site.dedicated_nics) == 1
        assert len(site.shared_nics) == 1
        assert len(site.fpga_nics) == 1


class TestResources:
    def test_total_resources(self, site):
        total = site.total_resources()
        assert total.cores == 24
        assert total.ram_gb == 96
        assert total.dedicated_nics == 1
        assert total.fpga_nics == 1
        assert total.shared_nic_slots == 10

    def test_available_tracks_allocation(self, site):
        before = site.available_resources()
        site.dedicated_nics[0].allocate("s")
        site.shared_nics[0].allocate_vf()
        vm_worker = site.workers[0]
        vm = vm_worker.create_vm("v", 4, 16, 100, "s")
        after = site.available_resources()
        assert after.dedicated_nics == before.dedicated_nics - 1
        assert after.shared_nic_slots == before.shared_nic_slots - 1
        assert after.cores == before.cores - 4
        vm_worker.destroy_vm(vm)
        site.dedicated_nics[0].release()
        site.shared_nics[0].release_vf()
        assert site.available_resources() == before

    def test_free_nic_queries(self, site):
        assert len(site.free_dedicated_nics()) == 1
        assert len(site.free_fpga_nics()) == 1
        site.dedicated_nics[0].allocate("s")
        assert site.free_dedicated_nics() == []

    def test_worker_for_vm_first_fit(self, site):
        worker = site.worker_for_vm(10, 32, 100)
        assert worker.name == "w0"  # only w0 has 10 free cores
        assert site.worker_for_vm(100, 1, 1) is None
