"""Tests for the NetFlow baseline exporter."""

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.frame import Frame
from repro.packets.builder import FrameBuilder, FrameSpec
from repro.packets.headers import (
    Ethernet, IPv4, MPLS, Payload, PseudoWireControlWord, TCP, UDP, VLAN,
)
from repro.telemetry.netflow import NetFlowExporter

E1, E2 = "02:00:00:00:00:01", "02:00:00:00:00:02"


def frame_of(stack, target=None):
    data = FrameBuilder().build(FrameSpec(stack, target_size=target))
    return Frame(wire_len=len(data), head=bytes(data[:256]))


def tcp_frame(src="10.0.0.1", dst="10.0.0.2", sport=1000, dport=80, vlan=100):
    return frame_of([Ethernet(E1, E2), VLAN(vlan), IPv4(src, dst),
                     TCP(sport, dport), Payload(100)])


class TestFiveTupleExtraction:
    def exporter(self):
        return NetFlowExporter(Simulator())

    def test_vlan_ip_tcp(self):
        exporter = self.exporter()
        exporter.observe(tcp_frame())
        assert exporter.distinct_flow_keys() == 1
        key = next(iter(exporter.cache))
        assert key == ("10.0.0.1", "10.0.0.2", 1000, 80, 6)

    def test_mpls_over_ip_visible(self):
        exporter = self.exporter()
        exporter.observe(frame_of([Ethernet(E1, E2), VLAN(5), MPLS(16),
                                   IPv4("10.0.0.1", "10.0.0.2"),
                                   UDP(53, 5353), Payload(20)]))
        assert exporter.distinct_flow_keys() == 1

    def test_pseudowire_is_opaque(self):
        """NetFlow cannot see through Ethernet-over-MPLS."""
        exporter = self.exporter()
        exporter.observe(frame_of([
            Ethernet(E1, E2), VLAN(5), MPLS(16), PseudoWireControlWord(),
            Ethernet(E1, E2), IPv4("10.0.0.1", "10.0.0.2"), TCP(1, 2),
            Payload(64)]))
        assert exporter.distinct_flow_keys() == 0
        assert exporter.non_ip_frames == 1

    def test_slices_with_same_addresses_merge(self):
        """The coarseness claim: v5 has no VLAN field, so two slices
        reusing 10/8 space collapse into one flow."""
        exporter = self.exporter()
        exporter.observe(tcp_frame(vlan=100))
        exporter.observe(tcp_frame(vlan=2900))
        assert exporter.distinct_flow_keys() == 1
        assert next(iter(exporter.cache.values())).packets == 2

    def test_garbage_counted_non_ip(self):
        exporter = self.exporter()
        exporter.observe(Frame(wire_len=64, head=b"\x00" * 64))
        assert exporter.non_ip_frames == 1


class TestCacheSemantics:
    def test_inactive_timeout_splits_flow(self):
        sim = Simulator()
        exporter = NetFlowExporter(sim, inactive_timeout=10.0)
        exporter.observe(tcp_frame())
        sim.run(until=20.0)
        exporter.observe(tcp_frame())
        assert len(exporter.exported) == 1  # first segment exported
        assert exporter.distinct_flow_keys() == 1  # same key overall

    def test_active_timeout(self):
        sim = Simulator()
        exporter = NetFlowExporter(sim, active_timeout=5.0,
                                   inactive_timeout=100.0)
        exporter.observe(tcp_frame())
        sim.run(until=3.0)
        exporter.observe(tcp_frame())
        sim.run(until=6.0)
        exporter.observe(tcp_frame())  # past active timeout -> re-keyed
        assert len(exporter.exported) == 1

    def test_flush_exports_everything(self):
        exporter = NetFlowExporter(Simulator())
        exporter.observe(tcp_frame())
        exporter.observe(tcp_frame(sport=2000))
        records = exporter.flush()
        assert len(records) == 2
        assert exporter.cache == {}
        assert {r.sport for r in records} == {1000, 2000}

    def test_record_accounting(self):
        sim = Simulator()
        exporter = NetFlowExporter(sim)
        f = tcp_frame()
        exporter.observe(f)
        sim.run(until=2.0)
        exporter.observe(f)
        record = exporter.flush()[0]
        assert record.packets == 2
        assert record.octets == 2 * f.wire_len
        assert record.last > record.first or record.packets == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            NetFlowExporter(Simulator(), active_timeout=0)


class TestSwitchAttachment:
    def test_attach_and_observe_live_traffic(self):
        from repro.testbed import FederationBuilder
        from repro.traffic.workloads import TrafficOrchestrator

        federation = FederationBuilder(seed=42).build(site_names=["STAR", "MICH"])
        exporter = NetFlowExporter(federation.sim)
        exporter.attach_to_switch(federation.site("STAR").switch)
        orchestrator = TrafficOrchestrator(federation, seed=7, scale=0.02)
        orchestrator.generate_window(0.0, 10.0, sites=["STAR"])
        federation.sim.run(until=11.0)
        assert exporter.frames_seen > 0
        assert exporter.distinct_flow_keys() > 0
