"""Tests for the ToR switch: forwarding, counters, and mirroring."""

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.frame import Frame
from repro.testbed.errors import MirrorConflictError
from repro.testbed.switch import DOWNLINK, Switch, UPLINK


def frame_to(dst_mac: bytes, src_mac: bytes = b"\x02\x00\x00\x00\x00\xaa",
             size: int = 1000) -> Frame:
    head = dst_mac + src_mac + b"\x08\x00" + b"\x00" * 50
    return Frame(wire_len=size, head=head)


MAC_A = b"\x02\x00\x00\x00\x00\x01"
MAC_B = b"\x02\x00\x00\x00\x00\x02"


@pytest.fixture()
def switch():
    sim = Simulator()
    sw = Switch(sim, "tor-test", default_rate_bps=1e9)
    sw.add_port("p1", DOWNLINK)
    sw.add_port("p2", DOWNLINK)
    sw.add_port("p3", DOWNLINK)
    sw.add_port("u1", UPLINK)
    return sw


class TestPorts:
    def test_duplicate_port_rejected(self, switch):
        with pytest.raises(ValueError):
            switch.add_port("p1")

    def test_bad_kind_rejected(self, switch):
        with pytest.raises(ValueError):
            switch.add_port("px", "sideways")

    def test_downlinks_uplinks_partition(self, switch):
        assert {p.port_id for p in switch.downlinks()} == {"p1", "p2", "p3"}
        assert {p.port_id for p in switch.uplinks()} == {"u1"}


class TestForwarding:
    def test_forwards_to_registered_mac(self, switch):
        sim = switch.sim
        switch.register_mac(MAC_B, "p2")
        received = []
        switch.ports["p2"].link.tx.connect(received.append)
        switch.ports["p1"].link.rx.offer(frame_to(MAC_B, MAC_A))
        sim.run()
        assert len(received) == 1

    def test_unknown_destination_counted(self, switch):
        switch.ports["p1"].link.rx.offer(frame_to(MAC_B))
        switch.sim.run()
        assert switch.unknown_dst_frames == 1

    def test_source_learning(self, switch):
        switch.register_mac(MAC_B, "p2")
        switch.ports["p1"].link.rx.offer(frame_to(MAC_B, MAC_A))
        switch.sim.run()
        # MAC_A was learned on p1; reply traffic now forwards.
        received = []
        switch.ports["p1"].link.tx.connect(received.append)
        switch.ports["p2"].link.rx.offer(frame_to(MAC_A, MAC_B))
        switch.sim.run()
        assert len(received) == 1

    def test_hairpin_delivery(self, switch):
        """Two VFs on one shared NIC talk through the same switch port."""
        switch.register_mac(MAC_B, "p1")
        received = []
        switch.ports["p1"].link.tx.connect(received.append)
        switch.ports["p1"].link.rx.offer(frame_to(MAC_B, MAC_A))
        switch.sim.run()
        assert len(received) == 1
        assert switch.unknown_dst_frames == 0

    def test_register_requires_known_port(self, switch):
        with pytest.raises(KeyError):
            switch.register_mac(MAC_A, "nope")

    def test_register_requires_6_bytes(self, switch):
        with pytest.raises(ValueError):
            switch.register_mac(b"\x01\x02", "p1")


class TestCounters:
    def test_counters_advance(self, switch):
        switch.register_mac(MAC_B, "p2")
        switch.ports["p1"].link.rx.offer(frame_to(MAC_B, MAC_A, size=1200))
        switch.sim.run()
        counters = switch.ports["p2"].counters()
        assert counters["tx_frames"] == 1
        assert counters["tx_bytes"] == 1200
        rx = switch.ports["p1"].counters()
        assert rx["rx_frames"] == 1

    def test_port_counters_walk(self, switch):
        walk = switch.port_counters()
        assert set(walk) == {"p1", "p2", "p3", "u1"}
        assert walk["p1"]["tx_bytes"] == 0


class TestMirroring:
    def test_mirror_clones_both_directions(self, switch):
        sim = switch.sim
        switch.register_mac(MAC_B, "p2")
        switch.register_mac(MAC_A, "p1")
        mirrored = []
        switch.ports["p3"].link.tx.connect(mirrored.append)
        switch.create_mirror("p1", "p3")
        switch.ports["p1"].link.rx.offer(frame_to(MAC_B, MAC_A))  # p1 Rx
        switch.ports["p2"].link.rx.offer(frame_to(MAC_A, MAC_B))  # p1 Tx
        sim.run()
        assert len(mirrored) == 2

    def test_mirror_rx_only(self, switch):
        sim = switch.sim
        switch.register_mac(MAC_B, "p2")
        switch.register_mac(MAC_A, "p1")
        mirrored = []
        switch.ports["p3"].link.tx.connect(mirrored.append)
        switch.create_mirror("p1", "p3", directions=frozenset({"rx"}))
        switch.ports["p1"].link.rx.offer(frame_to(MAC_B, MAC_A))
        switch.ports["p2"].link.rx.offer(frame_to(MAC_A, MAC_B))
        sim.run()
        assert len(mirrored) == 1

    def test_mirror_clones_are_copies(self, switch):
        switch.register_mac(MAC_B, "p2")
        clones = []
        switch.ports["p3"].link.tx.connect(clones.append)
        switch.create_mirror("p1", "p3")
        original = frame_to(MAC_B, MAC_A)
        switch.ports["p1"].link.rx.offer(original)
        switch.sim.run()
        assert clones[0].frame_id != original.frame_id
        assert clones[0].head == original.head

    def test_source_conflict(self, switch):
        switch.create_mirror("p1", "p3")
        with pytest.raises(MirrorConflictError):
            switch.create_mirror("p1", "u1")

    def test_destination_conflict(self, switch):
        switch.create_mirror("p1", "p3")
        with pytest.raises(MirrorConflictError):
            switch.create_mirror("p2", "p3")

    def test_self_mirror_rejected(self, switch):
        with pytest.raises(MirrorConflictError):
            switch.create_mirror("p1", "p1")

    def test_delete_mirror_stops_cloning(self, switch):
        switch.register_mac(MAC_B, "p2")
        clones = []
        switch.ports["p3"].link.tx.connect(clones.append)
        switch.create_mirror("p1", "p3")
        switch.delete_mirror("p1")
        switch.ports["p1"].link.rx.offer(frame_to(MAC_B, MAC_A))
        switch.sim.run()
        assert clones == []

    def test_retarget_moves_source(self, switch):
        switch.register_mac(MAC_B, "p2")
        switch.register_mac(MAC_A, "p1")
        clones = []
        switch.ports["p3"].link.tx.connect(clones.append)
        switch.create_mirror("p1", "p3")
        session = switch.retarget_mirror("p1", "p2")
        assert session.source_port_id == "p2"
        assert "p1" not in switch.mirrors and "p2" in switch.mirrors
        # Traffic entering p2 is now cloned; p1 traffic is not.
        switch.ports["p2"].link.rx.offer(frame_to(MAC_A, MAC_B))
        switch.ports["p1"].link.rx.offer(frame_to(MAC_B, MAC_A))
        switch.sim.run()
        # p2 rx clone + p1->p2 tx clone (forwarded frame leaves via p2).
        assert len(clones) == 2

    def test_mirror_overflow_drops_at_switch(self):
        """The paper's core hazard: Rx+Tx of a busy port cannot fit the
        mirror destination's line rate; clones tail-drop at the switch."""
        sim = Simulator()
        sw = Switch(sim, "tor", default_rate_bps=8e3, queue_limit_bytes=2000)
        sw.add_port("src", DOWNLINK)
        sw.add_port("dst", DOWNLINK)
        sw.add_port("mir", DOWNLINK)
        sw.register_mac(MAC_B, "dst")
        sw.create_mirror("src", "mir")
        # Offer 10 frames of 1000 B back-to-back: the mirror Tx channel
        # (1 kB/s, 2 kB queue) cannot absorb them.
        for _ in range(10):
            sw.ports["src"].link.rx.offer(frame_to(MAC_B, MAC_A))
        sim.run(until=0.01)
        assert sw.ports["mir"].counters()["tx_drops"] > 0
