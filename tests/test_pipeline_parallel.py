"""Parallel digestion, caching, and fast-path parity for the pipeline.

The Digest fan-out must be invisible in the output: running with one
worker, many workers, or a warm cache has to yield byte-identical CSVs.
These tests build a small multi-site corpus on disk and compare whole
runs end to end.
"""

import os
import random

import pytest

from repro.analysis.acap import abstract, digest_pcap, dissect_record
from repro.analysis.cache import AcapCache
from repro.analysis.dissect import Dissector
from repro.analysis.pipeline import AnalysisPipeline, PipelineStats
from repro.core.config import AnalysisConfig, PatchworkConfig
from repro.packets.builder import FrameBuilder, FrameSpec
from repro.packets.headers import (
    ARP, DNSHeader, Ethernet, HTTPPayload, ICMP, IPProto, IPv4, IPv6, MPLS,
    NTPPayload, Payload, PseudoWireControlWord, SSHBanner, TCP, TLSRecord,
    UDP, VLAN,
)
from repro.packets.pcap import PcapRecord, PcapWriter

E1, E2 = "02:00:00:00:00:01", "02:00:00:00:00:02"


def corpus_frames():
    """A varied stack mix: VLAN, MPLS+pseudowire, v4/v6, every app layer."""
    build = FrameBuilder().build
    return [
        build(FrameSpec([Ethernet(E1, E2), IPv4("10.0.0.1", "10.0.0.2"),
                         TCP(50000, 443), TLSRecord(), Payload(0)],
                        target_size=900)),
        build(FrameSpec([Ethernet(E1, E2), VLAN(301), MPLS(17000), MPLS(17001),
                         PseudoWireControlWord(), Ethernet(E1, E2),
                         IPv4("10.1.2.3", "10.4.5.6"), TCP(50001, 80),
                         HTTPPayload(), Payload(0)], target_size=1200)),
        build(FrameSpec([Ethernet(E1, E2), VLAN(2), VLAN(3),
                         IPv6("2001:db8::1", "2001:db8::2"),
                         UDP(50002, 53), DNSHeader()])),
        build(FrameSpec([Ethernet(E1, E2), IPv4("10.0.0.3", "10.0.0.4"),
                         UDP(50003, 123), NTPPayload()])),
        build(FrameSpec([Ethernet(E1, E2), IPv4("10.0.0.5", "10.0.0.6"),
                         TCP(50004, 22), SSHBanner()])),
        build(FrameSpec([Ethernet(E1, E2), IPv4("10.0.0.7", "10.0.0.8"),
                         TCP(50005, 5201), Payload(400)])),
        build(FrameSpec([Ethernet(E1, E2), ARP(E1, "10.0.0.9")])),
        build(FrameSpec([Ethernet(E1, E2), IPv4("10.0.0.10", "10.0.0.11",
                                                proto=IPProto.ICMP), ICMP()])),
    ]


def make_corpus(root, sites=3, pcaps_per_site=2, frames_per_pcap=40):
    """Write a deterministic multi-site pcap corpus; returns sorted paths."""
    rng = random.Random(1234)
    frames = corpus_frames()
    paths = []
    for s in range(sites):
        site_dir = root / f"site{s}"
        site_dir.mkdir(parents=True, exist_ok=True)
        for p in range(pcaps_per_site):
            path = site_dir / f"sample{p}.pcap"
            with PcapWriter(path, snaplen=200) as writer:
                for i in range(frames_per_pcap):
                    frame = frames[rng.randrange(len(frames))]
                    writer.write(PcapRecord(i * 0.001, frame[:200],
                                            orig_len=len(frame)))
            paths.append(path)
    return sorted(paths)


def csv_bytes(report, out_dir):
    return {p.name: p.read_bytes() for p in report.write_csvs(out_dir)}


class TestParallelEquivalence:
    def test_parallel_output_byte_identical_to_serial(self, tmp_path):
        pcaps = make_corpus(tmp_path / "pcaps")
        serial = AnalysisPipeline(acap_dir=tmp_path / "acap-s").run(pcaps)
        parallel = AnalysisPipeline(acap_dir=tmp_path / "acap-p",
                                    max_workers=4).run(pcaps)
        assert csv_bytes(serial, tmp_path / "csv-s") == \
            csv_bytes(parallel, tmp_path / "csv-p")

    def test_parallel_acaps_match_serial_in_order(self, tmp_path):
        pcaps = make_corpus(tmp_path / "pcaps")
        serial = AnalysisPipeline()
        parallel = AnalysisPipeline(max_workers=4)
        serial.digest(pcaps)
        parallel.digest(pcaps)
        assert [a.source for a in parallel.acaps] == \
            [a.source for a in serial.acaps]
        assert [a.records for a in parallel.acaps] == \
            [a.records for a in serial.acaps]

    def test_workers_capped_by_todo_size(self, tmp_path):
        pcaps = make_corpus(tmp_path / "pcaps", sites=1, pcaps_per_site=2)
        pipeline = AnalysisPipeline(max_workers=64)
        pipeline.digest(pcaps)
        assert pipeline.stats.workers == 2  # never more workers than pcaps

    def test_pool_path_actually_engages(self, tmp_path):
        # Guard against the fan-out silently degrading to the serial
        # branch: with max_workers > 1 and several pcaps to digest, the
        # recorded worker count must exceed one even on a 1-CPU host.
        pcaps = make_corpus(tmp_path / "pcaps")
        pipeline = AnalysisPipeline(max_workers=4)
        pipeline.digest(pcaps)
        assert pipeline.stats.workers == 4

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            AnalysisPipeline(max_workers=0)


class TestCacheIntegration:
    def test_second_run_is_all_hits_and_identical(self, tmp_path):
        pcaps = make_corpus(tmp_path / "pcaps")
        cache_dir = tmp_path / "cache"
        cold = AnalysisPipeline(cache_dir=cache_dir)
        cold_report = cold.run(pcaps)
        assert cold.stats.cache_misses == len(pcaps)
        assert cold.stats.cache_hits == 0

        warm = AnalysisPipeline(cache_dir=cache_dir)
        warm_report = warm.run(pcaps)
        assert warm.stats.cache_hits == len(pcaps)
        assert warm.stats.cache_misses == 0
        assert csv_bytes(cold_report, tmp_path / "csv-cold") == \
            csv_bytes(warm_report, tmp_path / "csv-warm")

    def test_touched_pcap_invalidates_only_itself(self, tmp_path):
        pcaps = make_corpus(tmp_path / "pcaps")
        cache_dir = tmp_path / "cache"
        AnalysisPipeline(cache_dir=cache_dir).digest(pcaps)
        stat = os.stat(pcaps[0])
        os.utime(pcaps[0], ns=(stat.st_atime_ns,
                               stat.st_mtime_ns + 1_000_000_000))
        rerun = AnalysisPipeline(cache_dir=cache_dir)
        rerun.digest(pcaps)
        assert rerun.stats.cache_misses == 1
        assert rerun.stats.cache_hits == len(pcaps) - 1

    def test_explicit_invalidation_forces_redigest(self, tmp_path):
        pcaps = make_corpus(tmp_path / "pcaps", sites=1, pcaps_per_site=1)
        cache_dir = tmp_path / "cache"
        AnalysisPipeline(cache_dir=cache_dir).digest(pcaps)
        assert AcapCache(cache_dir).invalidate(pcaps[0]) is True
        rerun = AnalysisPipeline(cache_dir=cache_dir)
        rerun.digest(pcaps)
        assert rerun.stats.cache_misses == 1

    def test_no_cache_pipeline_records_all_misses(self, tmp_path):
        pcaps = make_corpus(tmp_path / "pcaps", sites=1, pcaps_per_site=2)
        pipeline = AnalysisPipeline()
        pipeline.digest(pcaps)
        assert pipeline.cache is None
        assert pipeline.stats.cache_misses == len(pcaps)


class TestStats:
    def test_stats_populated_and_rendered(self, tmp_path):
        pcaps = make_corpus(tmp_path / "pcaps", sites=2, pcaps_per_site=1)
        pipeline = AnalysisPipeline()
        report = pipeline.run(pcaps)
        stats = report.stats
        assert isinstance(stats, PipelineStats)
        assert stats.pcaps == len(pcaps)
        assert stats.total_frames == report.total_frames > 0
        assert stats.digest_seconds > 0
        assert stats.frames_per_second > 0
        assert stats.total_seconds >= stats.digest_seconds
        text = stats.render()
        assert "frames/s" in text and "cache" in text

    def test_empty_run_stats(self):
        report = AnalysisPipeline().run([])
        assert report.stats.pcaps == 0
        assert report.stats.frames_per_second == 0.0


class TestFromConfig:
    def test_defaults_under_output_dir(self, tmp_path):
        config = PatchworkConfig(output_dir=tmp_path / "out",
                                 analysis=AnalysisConfig(max_workers=3))
        pipeline = AnalysisPipeline.from_config(config)
        assert pipeline.max_workers == 3
        assert pipeline.acap_dir == config.output_dir / "acap"
        assert pipeline.cache.cache_dir == config.output_dir / "acap-cache"

    def test_cache_disabled(self, tmp_path):
        config = PatchworkConfig(
            output_dir=tmp_path / "out",
            analysis=AnalysisConfig(cache_enabled=False))
        assert AnalysisPipeline.from_config(config).cache is None

    def test_zero_workers_means_cpu_count(self):
        assert AnalysisConfig(max_workers=0).max_workers == (os.cpu_count() or 1)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            AnalysisConfig(max_workers=-1)


class TestFastPathParity:
    """dissect_record must agree with the generic Dissector+abstract route."""

    def frames_with_edge_cases(self):
        frames = corpus_frames()
        extra = []
        for frame in frames:
            # Every truncation point of a representative frame.
            extra.extend(frame[:n] for n in range(14, min(len(frame), 120), 7))
        extra.append(b"\x00" * 60)               # all-zero runt
        extra.append(os.urandom(200))            # garbage
        extra.append(frames[0][:12])             # sub-Ethernet prefix
        return frames + extra

    def test_digest_matches_generic_dissector(self, tmp_path):
        path = tmp_path / "parity.pcap"
        with PcapWriter(path, snaplen=65535) as writer:
            for i, frame in enumerate(self.frames_with_edge_cases()):
                writer.write(PcapRecord(i * 0.001, frame))
        fast = digest_pcap(path)
        generic = digest_pcap(path, dissector=Dissector())
        assert len(fast) == len(generic) > 0
        for got, want in zip(fast.records, generic.records):
            assert got == want

    def test_single_frame_parity(self):
        frame = corpus_frames()[1]  # MPLS + pseudowire + VLAN + HTTP
        want = abstract(Dissector().dissect(frame), 1.5, len(frame), len(frame))
        got = dissect_record(frame, 1.5, len(frame))
        assert got == want
