"""Tests for trace reconstruction (repro.obs.trace): span trees,
critical path, shard-merge identity, damage tolerance, and the
Perfetto / folded-stacks exporters."""

import json
import pickle

from repro.cli import build_parser, main
from repro.obs import RunJournal
from repro.obs.trace import (
    TraceTree,
    chrome_trace_json,
    critical_path_summary,
    to_chrome_trace,
    to_folded_stacks,
)
from repro.obs.tracing import TraceContext, Tracer, qualify_span_id


def span_open(journal, span, name, t=None, parent=None, **attrs):
    journal.emit("span-open", t=t, span=span, parent=parent, name=name,
                 attrs=attrs)


def span_close(journal, span, name, t=None, **attrs):
    journal.emit("span-close", t=t, span=span, name=name, attrs=attrs)


def nested_journal():
    """root(0..10) > a(0..4), b(4..10) > g(5..9): the critical path is
    root -> b -> g."""
    journal = RunJournal()
    span_open(journal, 0, "root", t=0.0)
    span_open(journal, 1, "a", t=0.0, parent=0)
    span_close(journal, 1, "a", t=4.0)
    span_open(journal, 2, "b", t=4.0, parent=0)
    span_open(journal, 3, "g", t=5.0, parent=2)
    span_close(journal, 3, "g", t=9.0)
    span_close(journal, 2, "b", t=10.0)
    span_close(journal, 0, "root", t=10.0)
    return journal


def shard_segment(site, base_t):
    """A shard's journal as its un-namespaced tracer would write it:
    bare span ids counted from 0 -- the collision surface merge() must
    qualify away."""
    journal = RunJournal()
    span_open(journal, 0, "shard.run", t=base_t, site=site)
    span_open(journal, 1, "capture", t=base_t + 1.0, parent=0)
    span_close(journal, 1, "capture", t=base_t + 2.0)
    span_close(journal, 0, "shard.run", t=base_t + 3.0)
    return journal


class TestReconstruction:
    def test_tree_shape_and_durations(self):
        tree = TraceTree.from_journal(nested_journal())
        assert len(tree.roots) == 1
        root = tree.roots[0]
        assert root.name == "root"
        assert [c.name for c in root.children] == ["a", "b"]
        assert root.sim_duration == 10.0
        # Exclusive time: 10 inclusive minus children's 4 + 6.
        assert root.sim_self == 0.0
        b = root.children[1]
        assert b.sim_duration == 6.0
        assert b.sim_self == 2.0
        assert not tree.dangling()
        assert tree.orphan_closes == 0

    def test_close_attrs_merge_into_span(self):
        journal = RunJournal()
        span_open(journal, 0, "digest", t=0.0, pcaps=3)
        span_close(journal, 0, "digest", t=1.0, cache_hits=2)
        span = TraceTree.from_journal(journal).roots[0]
        assert span.attrs == {"pcaps": 3, "cache_hits": 2}

    def test_site_resolution_order(self):
        journal = RunJournal()
        # Explicit attr beats the qualified-id prefix; children inherit.
        span_open(journal, "STAR/0", "run", t=0.0, site="UTAH")
        span_open(journal, "STAR/1", "inner", t=0.0, parent="STAR/0")
        span_open(journal, 2, "bare", t=0.0, parent="STAR/1")
        tree = TraceTree.from_journal(journal)
        run, = tree.roots
        assert run.site == "UTAH"
        inner, = run.children
        assert inner.site == "STAR"  # from the "STAR/1" prefix
        assert inner.children[0].site == "STAR"  # inherited
        journal2 = RunJournal()
        span_open(journal2, 0, "orphan", t=0.0)
        assert TraceTree.from_journal(journal2).roots[0].site == "main"

    def test_wall_durations_surface_when_journaled(self):
        journal = RunJournal(deterministic=False)
        span_open(journal, 0, "stage", t=0.0)
        journal.emit("span-close", t=1.0, span=0, name="stage", attrs={},
                     volatile={"wall_s": 0.25})
        span = TraceTree.from_journal(journal).roots[0]
        assert span.wall_s == 0.25
        assert span.wall_self == 0.25


class TestMergedShardSegments:
    """Regression: merged shard segments must never cross-link their
    trees through colliding process-local span ids."""

    def test_merge_yields_disjoint_site_trees(self):
        merged = RunJournal.merge([
            ("MICH", shard_segment("MICH", 0.0)),
            ("STAR", shard_segment("STAR", 0.0)),
        ])
        tree = TraceTree.from_journal(merged)
        # Two independent roots -- without id qualification both
        # segments' span 0 would collapse into one generation chain.
        assert len(tree.roots) == 2
        assert sorted(r.span_id for r in tree.roots) == \
            ["MICH/0", "STAR/0"]
        for root in tree.roots:
            site = str(root.span_id).split("/")[0]
            assert [c.span_id for c in root.children] == [f"{site}/1"]
        assert tree.sites() == ["MICH", "STAR"]
        assert not tree.dangling()

    def test_qualification_is_idempotent(self):
        once = RunJournal.merge([("MICH", shard_segment("MICH", 0.0))])
        twice = RunJournal.merge([("MICH", once)])
        assert twice.to_jsonl() == once.to_jsonl()

    def test_merged_segments_under_one_campaign_root(self):
        # The campaign wrapper: shard tracers carry a TraceContext whose
        # root is the occasion span; the parent emits that root around
        # the merged events.  The result must read as ONE tree.
        root_id = "campaign/occ0"

        def shard(site):
            journal = RunJournal()
            tracer = Tracer(journal, None,
                            context=TraceContext(site=site, root=root_id))
            with tracer.span("shard.run", site=site):
                tracer.start_span("capture").end()
            return journal

        merged = RunJournal.merge(
            [("MICH", shard("MICH")), ("STAR", shard("STAR"))], start_seq=0)
        wrapped = RunJournal()
        span_open(wrapped, root_id, "campaign.occasion", t=0.0)
        wrapped.events.extend(merged.events)
        wrapped.reseq(0)
        span_close(wrapped, root_id, "campaign.occasion", t=0.0)
        tree = TraceTree.from_journal(wrapped)
        assert len(tree.roots) == 1
        root = tree.roots[0]
        assert root.name == "campaign.occasion"
        assert sorted(c.span_id for c in root.children) == \
            ["MICH/0", "STAR/0"]
        assert not tree.dangling()


class TestGenerations:
    def test_rotated_segments_reuse_ids_without_merging(self):
        # Each campaign occasion segment restarts the tracer's counter,
        # so the concatenated stream opens span 0 twice.
        seg1, seg2 = RunJournal(), RunJournal()
        span_open(seg1, 0, "occasion", t=0.0)
        span_close(seg1, 0, "occasion", t=5.0)
        span_open(seg2, 0, "occasion", t=10.0)
        span_close(seg2, 0, "occasion", t=15.0)
        tree = TraceTree.from_journals([seg1, seg2])
        assert len(tree.roots) == 2
        assert [(r.opened_at, r.closed_at) for r in tree.roots] == \
            [(0.0, 5.0), (10.0, 15.0)]
        assert not tree.dangling()

    def test_close_matches_most_recent_open_instance(self):
        journal = RunJournal()
        span_open(journal, 0, "occasion", t=0.0)   # crashed, never closed
        span_open(journal, 0, "occasion", t=10.0)  # retry after resume
        span_close(journal, 0, "occasion", t=12.0)
        tree = TraceTree.from_journal(journal)
        first, second = tree.roots
        assert first.dangling
        assert second.closed and second.sim_duration == 2.0
        assert tree.dangling() == [first]


class TestDamageTolerance:
    def test_torn_tail_leaves_dangling_span(self, tmp_path):
        journal = RunJournal()
        span_open(journal, 0, "occasion", t=0.0)
        span_open(journal, 1, "capture", t=1.0, parent=0)
        span_close(journal, 1, "capture", t=2.0)
        span_close(journal, 0, "occasion", t=3.0)
        path = journal.write(tmp_path / "journal.jsonl")
        lines = path.read_text().splitlines(keepends=True)
        # Kill the process mid-write of the capture close: its line
        # survives only partially, and the occasion close never lands.
        path.write_text("".join(lines[:2]) + lines[2][:15])
        damaged = RunJournal.read(path)
        assert damaged.torn_tail is not None
        tree = TraceTree.from_journal(damaged)
        assert [s.name for s in tree.dangling()] == ["occasion", "capture"]
        assert tree.orphan_closes == 0

    def test_orphan_close_counted_not_fatal(self):
        journal = RunJournal()
        span_close(journal, 7, "ghost", t=1.0)
        tree = TraceTree.from_journal(journal)
        assert tree.orphan_closes == 1
        assert not tree.spans

    def test_unknown_parent_gets_synthetic_root(self):
        # A shard segment inspected standalone: its spans parent under
        # the campaign root that lives in another journal.
        journal = RunJournal()
        span_open(journal, "STAR/0", "shard.run", t=0.0,
                  parent="campaign/occ0")
        span_close(journal, "STAR/0", "shard.run", t=1.0)
        tree = TraceTree.from_journal(journal)
        root, = tree.roots
        assert root.synthetic
        assert root.span_id == "campaign/occ0"
        assert [c.name for c in root.children] == ["shard.run"]
        # Synthetic placeholders are bookkeeping, not evidence of a
        # crash, and never appear on reconstructed paths.
        assert not tree.dangling()
        assert [s.name for s in tree.critical_path()] == ["shard.run"]
        assert [s.name for s in root.children[0].path()] == ["shard.run"]


class TestCriticalPath:
    def test_descends_into_latest_ending_child(self):
        tree = TraceTree.from_journal(nested_journal())
        assert [s.name for s in tree.critical_path()] == \
            ["root", "b", "g"]

    def test_summary_shares(self):
        tree = TraceTree.from_journal(nested_journal())
        summary = critical_path_summary(tree.critical_path())
        assert summary["total_sim"] == 10.0
        # root contributes its exclusive 0s, b its exclusive 2s, and
        # the leaf g its inclusive 4s.
        assert summary["stages"] == {"root": 0.0, "b": 0.2, "g": 0.4}
        assert [hop["name"] for hop in summary["path"]] == \
            ["root", "b", "g"]

    def test_empty_tree(self):
        tree = TraceTree.from_journal(RunJournal())
        assert tree.critical_path() == []
        assert critical_path_summary([]) == {"total_sim": 0.0, "stages": {}}

    def test_dangling_root_end_time_from_descendants(self):
        journal = RunJournal()
        span_open(journal, 0, "occasion", t=0.0)
        span_open(journal, 1, "capture", t=1.0, parent=0)
        span_close(journal, 1, "capture", t=8.0)
        tree = TraceTree.from_journal(journal)
        assert tree.roots[0].end_time() == 8.0
        assert [s.name for s in tree.critical_path()] == \
            ["occasion", "capture"]


class TestOutOfOrderCloses:
    def test_manual_spans_closed_after_parent_scope(self):
        # Instance spans outlive the lexical scope that opened them and
        # close in reverse-open order -- both legal for manual spans.
        journal = RunJournal()
        tracer = Tracer(journal, None)
        with tracer.span("occasion") as occasion:
            first = tracer.start_span("instance", instance=1)
            second = tracer.start_span("instance", instance=2)
        second.end()
        first.end()
        tree = TraceTree.from_journal(journal)
        root, = tree.roots
        assert root.name == "occasion" and root.closed
        assert [c.attrs["instance"] for c in root.children] == [1, 2]
        assert all(c.closed for c in root.children)
        assert not tree.dangling()

    def test_interleaved_closes_with_explicit_times(self):
        journal = RunJournal()
        span_open(journal, 0, "occasion", t=0.0)
        span_open(journal, 1, "instance", t=1.0, parent=0)
        span_open(journal, 2, "instance", t=2.0, parent=0)
        span_close(journal, 0, "occasion", t=3.0)
        span_close(journal, 2, "instance", t=4.0)
        span_close(journal, 1, "instance", t=5.0)
        tree = TraceTree.from_journal(journal)
        root, = tree.roots
        assert root.sim_duration == 3.0
        assert [c.sim_duration for c in root.children] == [4.0, 2.0]
        # The path follows the child whose subtree ends last.
        assert [s.opened_at for s in tree.critical_path()] == [0.0, 1.0]


class TestTraceContext:
    def test_tracer_qualifies_ids_and_parents_under_root(self):
        journal = RunJournal()
        tracer = Tracer(journal, None,
                        context=TraceContext(site="STAR",
                                             root="campaign/occ3"))
        with tracer.span("shard.run") as outer:
            inner = tracer.start_span("capture")
            inner.end()
        assert outer.span_id == "STAR/0"
        assert outer.parent_id == "campaign/occ3"
        assert inner.span_id == "STAR/1"
        assert inner.parent_id == "STAR/0"

    def test_round_trips(self):
        context = TraceContext(site="MICH", root="campaign/occ0")
        assert TraceContext.from_dict(context.to_dict()) == context
        assert pickle.loads(pickle.dumps(context)) == context
        assert TraceContext.from_dict({"site": "MICH"}).root is None

    def test_qualify_span_id_idempotent(self):
        assert qualify_span_id("STAR", 4) == "STAR/4"
        assert qualify_span_id("STAR", "MICH/4") == "MICH/4"


class TestChromeTrace:
    def make_tree(self):
        merged = RunJournal.merge([
            ("MICH", shard_segment("MICH", 0.0)),
            ("STAR", shard_segment("STAR", 0.0)),
        ])
        return TraceTree.from_journal(merged)

    def test_pid_per_site_with_metadata(self):
        trace = to_chrome_trace(self.make_tree())
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        processes = {e["args"]["name"]: e["pid"] for e in meta
                     if e["name"] == "process_name"}
        assert processes == {"MICH": 1, "STAR": 2}
        assert any(e["name"] == "thread_name" and
                   e["args"]["name"] == "main" for e in meta)

    def test_complete_events_in_microseconds(self):
        trace = to_chrome_trace(self.make_tree())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 4
        run = next(e for e in spans
                   if e["name"] == "shard.run" and e["cat"] == "STAR")
        assert run["ts"] == 0.0
        assert run["dur"] == 3e6
        assert trace["displayTimeUnit"] == "ms"

    def test_tid_per_instance(self):
        journal = RunJournal()
        span_open(journal, 0, "occasion", t=0.0)
        span_open(journal, 1, "instance.run", t=0.0, parent=0, instance=2)
        span_open(journal, 2, "capture", t=0.0, parent=1)
        for span in (2, 1, 0):
            span_close(journal, span, "x", t=1.0)
        trace = to_chrome_trace(TraceTree.from_journal(journal))
        spans = {e["name"]: e for e in trace["traceEvents"]
                 if e["ph"] == "X"}
        assert spans["occasion"]["tid"] == 0
        # The instance span and everything under it share one lane.
        assert spans["instance.run"]["tid"] == spans["capture"]["tid"] == 1
        threads = [e["args"]["name"] for e in trace["traceEvents"]
                   if e["ph"] == "M" and e["name"] == "thread_name"]
        assert "instance 2" in threads

    def test_dangling_span_flagged_not_unmatched(self):
        journal = RunJournal()
        span_open(journal, 0, "occasion", t=1.0)
        trace = to_chrome_trace(TraceTree.from_journal(journal))
        event, = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert event["dur"] == 0.0
        assert event["args"]["dangling"] is True

    def test_serialization_is_canonical(self):
        text = chrome_trace_json(self.make_tree())
        assert text == chrome_trace_json(self.make_tree())
        assert text.endswith("\n")
        assert json.loads(text)["traceEvents"]


class TestFoldedStacks:
    def test_exclusive_microsecond_weights(self):
        text = to_folded_stacks(TraceTree.from_journal(nested_journal()))
        # root's exclusive time is 0 -> dropped; the rest carry their
        # exclusive sim time in integer usec, lines sorted.
        assert text.splitlines() == [
            "root;a 4000000",
            "root;b 2000000",
            "root;b;g 4000000",
        ]

    def test_empty_tree_yields_no_lines(self):
        assert to_folded_stacks(TraceTree.from_journal(RunJournal())) == ""


class TestStageStats:
    def test_aggregates_sorted_by_total(self):
        rows = TraceTree.from_journal(nested_journal()).stage_stats()
        assert [r["stage"] for r in rows] == ["root", "b", "a", "g"]
        by_stage = {r["stage"]: r for r in rows}
        assert by_stage["b"]["sim_total"] == 6.0
        assert by_stage["b"]["sim_self"] == 2.0
        assert by_stage["root"]["count"] == 1

    def test_registry_carries_histograms_and_quantiles(self):
        from repro.obs.export import to_prometheus

        journal = nested_journal()
        span_open(journal, 9, "crashed", t=0.0)
        registry = TraceTree.from_journal(journal).to_registry()
        snapshot = registry.snapshot()
        assert snapshot["trace.stage.b.sim_seconds"]["count"] == 1
        assert snapshot["trace.spans.dangling"]["value"] == 1
        text = to_prometheus(registry)
        assert 'trace_stage_b_sim_seconds{quantile="0.5"}' in text


class TestTraceCli:
    def span_journal(self, tmp_path):
        path = nested_journal().write(tmp_path / "journal.jsonl")
        return path

    def test_parser(self):
        parser = build_parser()
        args = parser.parse_args(["trace", "critical-path", "j.jsonl",
                                  "--json"])
        assert args.command == "trace"
        assert args.trace_command == "critical-path"
        assert args.json

    def test_missing_journal_exits_two(self, capsys):
        assert main(["trace", "tree", "/nonexistent/journal.jsonl"]) == 2
        assert "no such journal" in capsys.readouterr().err

    def test_spanless_journal_exits_two(self, tmp_path, capsys):
        journal = RunJournal()
        journal.emit("log", t=1.0, message="hello")
        path = journal.write(tmp_path / "bare.jsonl")
        assert main(["trace", "tree", str(path)]) == 2
        assert "no span events" in capsys.readouterr().err

    def test_tree_renders_forest(self, tmp_path, capsys):
        assert main(["trace", "tree",
                     str(self.span_journal(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "root" in out and "  b" in out and "    g" in out

    def test_tree_json(self, tmp_path, capsys):
        assert main(["trace", "tree", str(self.span_journal(tmp_path)),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"] == 4
        assert payload["dangling"] == []
        assert payload["roots"][0]["name"] == "root"

    def test_critical_path_json(self, tmp_path, capsys):
        assert main(["trace", "critical-path",
                     str(self.span_journal(tmp_path)), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_sim"] == 10.0
        assert [hop["name"] for hop in payload["path"]] == \
            ["root", "b", "g"]

    def test_export_chrome_to_file(self, tmp_path, capsys):
        journal_path = self.span_journal(tmp_path)
        out = tmp_path / "trace.json"
        assert main(["trace", "export", str(journal_path),
                     "--format", "chrome", "-o", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in payload["traceEvents"])
        # Re-export is byte-identical (the determinism the CI parity
        # check relies on).
        again = tmp_path / "again.json"
        assert main(["trace", "export", str(journal_path),
                     "--format", "chrome", "-o", str(again)]) == 0
        assert out.read_bytes() == again.read_bytes()

    def test_export_folded_to_stdout(self, tmp_path, capsys):
        assert main(["trace", "export", str(self.span_journal(tmp_path)),
                     "--format", "folded"]) == 0
        assert "root;b;g 4000000" in capsys.readouterr().out

    def test_stats_json_and_prom(self, tmp_path, capsys):
        journal_path = self.span_journal(tmp_path)
        assert main(["trace", "stats", str(journal_path), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["stage"] == "root"
        assert main(["trace", "stats", str(journal_path), "--prom"]) == 0
        assert "trace_stage_root_sim_seconds_count 1" in \
            capsys.readouterr().out

    def test_run_dir_resolves_to_journal(self, tmp_path, capsys):
        self.span_journal(tmp_path)
        assert main(["trace", "tree", str(tmp_path)]) == 0
        assert "root" in capsys.readouterr().out

    def test_run_dir_falls_back_to_segments(self, tmp_path, capsys):
        seg_dir = tmp_path / "segments"
        seg_dir.mkdir()
        seg1, seg2 = RunJournal(), RunJournal()
        span_open(seg1, 0, "occ0", t=0.0)
        span_close(seg1, 0, "occ0", t=1.0)
        span_open(seg2, 0, "occ1", t=2.0)
        span_close(seg2, 0, "occ1", t=3.0)
        seg1.write(seg_dir / "occ0000.jsonl")
        seg2.write(seg_dir / "occ0001.jsonl")
        assert main(["trace", "tree", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [r["name"] for r in payload["roots"]] == ["occ0", "occ1"]
