"""Tests for sim-time tracing (repro.obs.tracing)."""

from repro.netsim.engine import Simulator
from repro.obs import NULL_SPAN, Observability, RunJournal, Tracer, trace_tree
from repro.obs.clock import SimClock


def make_tracer(sim=None):
    clock = SimClock(sim) if sim is not None else None
    journal = RunJournal(clock=clock)
    return Tracer(journal, clock), journal


class TestLexicalSpans:
    def test_nesting_parents(self):
        tracer, journal = make_tracer()
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert tracer.current is None
        opens = journal.of_kind("span-open")
        closes = journal.of_kind("span-close")
        assert [e.data["name"] for e in opens] == ["outer", "inner"]
        # Inner closes before outer.
        assert [e.data["name"] for e in closes] == ["inner", "outer"]

    def test_attrs_on_open_and_close(self):
        tracer, journal = make_tracer()
        with tracer.span("work", site="STAR") as span:
            span.end(frames=7)
        open_event = journal.of_kind("span-open")[0]
        close_event = journal.of_kind("span-close")[0]
        assert open_event.data["attrs"] == {"site": "STAR"}
        assert close_event.data["attrs"] == {"frames": 7}

    def test_double_end_is_harmless(self):
        tracer, journal = make_tracer()
        span = tracer.start_span("x")
        span.end()
        span.end()
        assert len(journal.of_kind("span-close")) == 1


class TestManualSpans:
    def test_parent_defaults_to_current_lexical(self):
        tracer, _ = make_tracer()
        with tracer.span("occasion") as occasion:
            manual = tracer.start_span("instance")
            assert manual.parent_id == occasion.span_id
            # Manual spans never become current: a second concurrent
            # manual span must not parent under the first.
            other = tracer.start_span("instance")
            assert other.parent_id == occasion.span_id
            manual.end()
            other.end()

    def test_sim_time_stamps(self):
        sim = Simulator()
        tracer, journal = make_tracer(sim)
        span = tracer.start_span("capture")
        sim.schedule_at(5.0, span.end)
        sim.run()
        open_event = journal.of_kind("span-open")[0]
        close_event = journal.of_kind("span-close")[0]
        assert open_event.t == 0.0
        assert close_event.t == 5.0

    def test_callback_spans_parent_under_open_lexical_scope(self):
        # The coordinator's occasion span stays current while the
        # simulator drives instances; spans opened from callbacks must
        # parent under it.
        sim = Simulator()
        tracer, journal = make_tracer(sim)

        def open_and_close():
            tracer.start_span("instance").end()

        with tracer.span("occasion") as occasion:
            sim.schedule_at(2.0, open_and_close)
            sim.run()
        instance_open = [e for e in journal.of_kind("span-open")
                         if e.data["name"] == "instance"][0]
        assert instance_open.data["parent"] == occasion.span_id


class TestDisabled:
    def test_disabled_tracer_hands_out_null_span(self):
        journal = RunJournal(enabled=False)
        tracer = Tracer(journal, None, enabled=False)
        span = tracer.start_span("x")
        assert span is NULL_SPAN
        span.end()
        with tracer.span("y") as inner:
            assert inner is NULL_SPAN
        assert len(journal) == 0

    def test_default_process_obs_is_inert(self):
        obs = Observability.disabled()
        assert not obs.enabled
        with obs.tracer.span("x"):
            obs.registry.counter("c").inc()
        assert len(obs.journal) == 0
        assert len(obs.registry) == 0


class TestTraceTree:
    def test_tree_reconstruction(self):
        tracer, journal = make_tracer()
        with tracer.span("root"):
            with tracer.span("child-a"):
                pass
            with tracer.span("child-b"):
                pass
        tree = trace_tree(journal)
        roots = tree[None]
        assert [s["name"] for s in roots] == ["root"]
        children = tree[roots[0]["span"]]
        assert [s["name"] for s in children] == ["child-a", "child-b"]
