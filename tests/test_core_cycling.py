"""Tests for port-cycling heuristics."""

import numpy as np
import pytest

from repro.core.cycling import (
    AllPortsSelector, BusiestBiasSelector, FixedPortsSelector,
    SelectionContext, UplinksOnlySelector, make_selector,
)
from repro.telemetry.mflib import MFlib
from repro.telemetry.timeseries import CounterStore


def store_with_rates(rates_mbps):
    """A store where port pN moves rates_mbps[N] Mbps of Tx traffic."""
    store = CounterStore()
    for t_index, t in enumerate([0.0, 300.0, 600.0]):
        for port, mbps in rates_mbps.items():
            bytes_total = t_index * mbps * 1e6 / 8 * 300
            store.append("STAR", port, "tx_bytes", t, bytes_total)
            store.append("STAR", port, "rx_bytes", t, 0)
            store.append("STAR", port, "tx_drops", t, 0)
            store.append("STAR", port, "rx_drops", t, 0)
    return store


def context(rates_mbps, cycle_index=0, history=None, candidates=None,
            uplinks=(), rng=None):
    return SelectionContext(
        site="STAR",
        candidates=candidates if candidates is not None else sorted(rates_mbps),
        uplink_ids=list(uplinks),
        mflib=MFlib(store_with_rates(rates_mbps)),
        now=600.0,
        window=600.0,
        idle_threshold_bps=1000.0,
        cycle_index=cycle_index,
        history=history if history is not None else {},
        rng=rng if rng is not None else np.random.default_rng(0),
    )


RATES = {"p1": 100.0, "p2": 10.0, "p3": 1.0, "p4": 0.0}


class TestBusiestBias:
    def test_busiest_cycle_picks_top_port(self):
        ctx = context(RATES, cycle_index=0)  # 0 % n == 0 -> busiest mode
        chosen = BusiestBiasSelector(n=4).select(ctx, slots=1)
        assert chosen == ["p1"]

    def test_busiest_skips_recently_sampled(self):
        history = {"p1": -1}  # sampled 1 cycle ago, within n=4
        ctx = context(RATES, cycle_index=0, history=history)
        chosen = BusiestBiasSelector(n=4).select(ctx, slots=1)
        assert chosen == ["p2"]  # next busiest fresh port

    def test_random_cycle_picks_non_idle(self):
        ctx = context(RATES, cycle_index=1)  # not a busiest cycle
        chosen = BusiestBiasSelector(n=4).select(ctx, slots=1)
        assert chosen[0] in {"p1", "p2", "p3"}  # p4 is idle

    def test_slots_get_distinct_ports(self):
        ctx = context(RATES, cycle_index=0)
        chosen = BusiestBiasSelector(n=4).select(ctx, slots=3)
        assert len(chosen) == len(set(chosen)) == 3

    def test_fills_with_random_when_all_idle(self):
        ctx = context({"p1": 0.0, "p2": 0.0}, cycle_index=1)
        chosen = BusiestBiasSelector(n=4).select(ctx, slots=2)
        assert len(chosen) == 2  # never starves a slot

    def test_no_candidates(self):
        ctx = context(RATES, candidates=[])
        assert BusiestBiasSelector().select(ctx, slots=2) == []

    def test_n_validated(self):
        with pytest.raises(ValueError):
            BusiestBiasSelector(n=1)

    def test_fairness_over_cycles(self):
        """Over many cycles every non-idle port gets sampled."""
        selector = BusiestBiasSelector(n=3)
        history = {}
        seen = set()
        rng = np.random.default_rng(3)  # one stream across cycles
        for cycle in range(24):
            ctx = context(RATES, cycle_index=cycle, history=dict(history),
                          rng=rng)
            chosen = selector.select(ctx, slots=1)
            for port in chosen:
                history[port] = cycle
                seen.add(port)
        assert {"p1", "p2", "p3"} <= seen


class TestOtherSelectors:
    def test_fixed(self):
        ctx = context(RATES)
        selector = FixedPortsSelector(["p3", "p2"])
        assert selector.select(ctx, slots=2) == ["p3", "p2"]
        assert selector.select(ctx, slots=1) == ["p3"]

    def test_fixed_filters_to_candidates(self):
        ctx = context(RATES, candidates=["p2"])
        assert FixedPortsSelector(["p3", "p2"]).select(ctx, slots=2) == ["p2"]

    def test_fixed_requires_ports(self):
        with pytest.raises(ValueError):
            FixedPortsSelector([])

    def test_uplinks_only(self):
        ctx = context(RATES, uplinks=["p2", "p3"])
        chosen = UplinksOnlySelector().select(ctx, slots=1)
        assert chosen[0] in {"p2", "p3"}

    def test_uplinks_rotate(self):
        first = UplinksOnlySelector().select(
            context(RATES, uplinks=["p2", "p3"], cycle_index=0), slots=1)
        second = UplinksOnlySelector().select(
            context(RATES, uplinks=["p2", "p3"], cycle_index=1), slots=1)
        assert first != second

    def test_uplinks_empty(self):
        ctx = context(RATES, uplinks=[])
        assert UplinksOnlySelector().select(ctx, slots=1) == []

    def test_all_ports_round_robin_covers_idle(self):
        seen = set()
        for cycle in range(4):
            ctx = context(RATES, cycle_index=cycle)
            seen.update(AllPortsSelector().select(ctx, slots=1))
        assert "p4" in seen  # idle ports included

    def test_factory(self):
        assert isinstance(make_selector("busiest-bias"), BusiestBiasSelector)
        assert isinstance(make_selector("fixed", fixed_ports=["p1"]),
                          FixedPortsSelector)
        assert isinstance(make_selector("uplinks"), UplinksOnlySelector)
        assert isinstance(make_selector("all"), AllPortsSelector)
        with pytest.raises(ValueError):
            make_selector("nonsense")
