"""Tests for the SVG/ASCII visualization layer."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.visualize import (
    Series,
    SvgCanvas,
    bar_chart,
    histogram_chart,
    line_chart,
    render_report_charts,
    sparkline,
)


def parse_svg(text: str) -> ET.Element:
    return ET.fromstring(text)


class TestSparkline:
    def test_length_bounded(self):
        assert len(sparkline(list(range(500)), width=60)) == 60

    def test_short_input_kept(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_input_monotone_output(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert list(line) == sorted(line)

    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_input(self):
        assert len(set(sparkline([5, 5, 5, 5]))) == 1


class TestSvgCanvas:
    def test_valid_xml(self):
        canvas = SvgCanvas(100, 50)
        canvas.rect(0, 0, 10, 10, "#000", title="a<b")
        canvas.line(0, 0, 10, 10)
        canvas.text(5, 5, "héllo & <tags>")
        canvas.circle(3, 3, 1, "#fff")
        canvas.polyline([(0, 0), (1, 1)], "#123")
        root = parse_svg(canvas.render())
        assert root.tag.endswith("svg")

    def test_save(self, tmp_path):
        canvas = SvgCanvas()
        path = canvas.save(tmp_path / "charts" / "c.svg")
        assert path.exists()
        parse_svg(path.read_text())


class TestBarChart:
    def test_basic(self):
        canvas = bar_chart(["a", "b", "c"], [Series("s", [1.0, 3.0, 2.0])],
                           title="T")
        text = canvas.render()
        parse_svg(text)
        assert "T" in text
        assert text.count("<rect") >= 4  # background + 3 bars

    def test_grouped(self):
        canvas = bar_chart(["a", "b"], [Series("x", [1, 2]),
                                        Series("y", [2, 1])])
        parse_svg(canvas.render())

    def test_stacked_height_normalized(self):
        canvas = bar_chart(["a"], [Series("x", [0.5]), Series("y", [0.5])],
                           stacked=True)
        parse_svg(canvas.render())

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart([], [Series("s", [])])
        with pytest.raises(ValueError):
            bar_chart(["a"], [Series("s", [1, 2])])

    def test_many_labels_skips_tick_text(self):
        labels = [f"s{i}" for i in range(60)]
        canvas = bar_chart(labels, [Series("x", [1.0] * 60)])
        # Bars keep their tooltips, but rotated tick labels are dropped
        # when there are too many to read.
        assert 'rotate(-45' not in canvas.render()


class TestLineChart:
    def test_basic(self):
        canvas = line_chart([0, 1, 2], [Series("cdf", [0.1, 0.6, 1.0])],
                            markers=True)
        text = canvas.render()
        parse_svg(text)
        assert "<polyline" in text
        assert "<circle" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([0, 1], [Series("s", [1])])

    def test_legend_for_multiple_series(self):
        canvas = line_chart([0, 1], [Series("alpha", [0, 1]),
                                     Series("beta", [1, 0])])
        text = canvas.render()
        assert "alpha" in text and "beta" in text


class TestHistogram:
    def test_histogram(self):
        canvas = histogram_chart([5, 10, 2], ["0-10", "10-100", ">100"])
        parse_svg(canvas.render())


class TestReportCharts:
    def test_render_report_charts(self, profiled_bundle_and_pipeline, tmp_path):
        _bundle, _pipeline, report = profiled_bundle_and_pipeline
        written = render_report_charts(report, tmp_path / "charts")
        assert len(written) == 4
        for path in written:
            assert path.exists()
            parse_svg(path.read_text())
