"""RL012 good: every stream derives from the seed tree.

String-domain derivation (``derive_rng``/``SeedSequenceFactory``),
hash-of-string seeds (the string is the domain), seeds threaded as
parameters, and process boundaries crossed by *seeds* with the worker
re-deriving locally.
"""

import zlib
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.util.rng import SeedSequenceFactory, derive_rng


def derived_stream(seed):
    return derive_rng(seed, "fixture/site-a")


def factory_stream(factory: SeedSequenceFactory, site):
    return factory.rng(f"fixture/{site}")


def hashed_stream(seed, site):
    return np.random.default_rng(zlib.crc32(f"{seed}/{site}".encode()))


def threaded_stream(seed):
    return np.random.default_rng(seed)


def sample(seed, domain, task):
    rng = derive_rng(seed, domain)
    return float(rng.random()) + task


def fan_out(seed, tasks):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(sample, seed, f"fixture/task{i}", task)
                   for i, task in enumerate(tasks)]
    return [f.result() for f in futures]
