"""RL000 bad: suppression pragmas with no justification.

A pragma without a `-- reason` clause waives an invariant with no
audit trail; every one of these must be reported.
"""

import time

# reprolint: disable-file=RL006

started = time.perf_counter()  # reprolint: disable=RL001
elapsed = time.perf_counter() - started  # reprolint: disable=RL001 --
