"""RL006 bad fixture: broad excepts that swallow failures invisibly.

The first function is the shape shipped in ``SliceAllocator._place``
before this PR's fix, minus the re-raise that kept it legal.
"""


def place_and_rollback(site, request, created_vms):
    try:
        return site.place(request)
    except Exception:
        # BAD: rollback is fine, but the failure itself vanishes --
        # no re-raise, nothing journaled.
        for vm in created_vms:
            vm.destroy()
        return None


def poll_quietly(poller):
    try:
        return poller.read()
    except:  # BAD: bare except, silently defaulted  # noqa: E722
        return 0
