"""RL009 good: a closed emit/consume contract.

Every emitted kind has an in-tree consumer, same-kind emits share one
key set, and kind names resolve through constants and parameter
defaults -- the propagation the index exists to do.
"""

SPAN_KINDS = ("window-open", "window-close")


def emit_events(journal, now, kind="snapshot"):
    journal.emit("scheduled", t=now, site="site-a", frames=10)
    journal.emit("scheduled", t=now, site="site-b", frames=3)
    journal.emit(kind, t=now, site="site-a", frames=10)
    journal.emit("window-open", t=now, window=1)
    journal.emit("window-close", t=now, window=1)


def read_back(journal):
    scheduled = list(journal.of_kind("scheduled"))
    snapshots = list(journal.of_kind("snapshot"))
    windows = [event for event in journal.events
               if event.kind in SPAN_KINDS]
    return scheduled, snapshots, windows
