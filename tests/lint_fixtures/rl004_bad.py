"""RL004 bad fixture: the PR 3 RNG-desync bug class, re-introduced.

This is a distilled copy of the original ``FlowTemplate`` defect: the
app-header draw consumed the flow's *shared* seeded RNG, but only on a
template-cache miss, so the second seeded run in a process (cache warm)
skipped the draw and desynchronized every subsequent sample.
"""

_TEMPLATE_CACHE = {}


class FlowTemplate:
    def __init__(self, app, rng):
        self.app = app
        self.rng = rng  # the flow's SHARED seeded stream

    def build(self, kind):
        key = (self.app.name, kind)
        if key in _TEMPLATE_CACHE:  # cache-hit early return
            return _TEMPLATE_CACHE[key]
        # BAD: this draw only happens on a miss -- a sibling run that
        # hits the cache consumes less of the shared stream and desyncs.
        header = self.app.app_header(self.rng.integers(0, 2**16))
        _TEMPLATE_CACHE[key] = header
        return header


def sample_cached(cache, rng, key):
    cached = cache.get(key)
    if cached is not None:
        return cached
    value = rng.normal()  # BAD: drawn on the miss path only
    cache[key] = value
    return value


def draw_in_guard(memo, shared_rng, key):
    if key not in memo:
        # BAD: draw inside the cache-guarded branch itself.
        memo[key] = shared_rng.choice([1, 2, 3])
    return memo[key]
