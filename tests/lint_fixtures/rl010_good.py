"""RL010 good: picklable-by-construction boundary crossings.

Module-level callables, primitive/frozen-dataclass task payloads, and
thread pools (which never pickle) all pass.  The handle opened in the
parent stays in the parent; only its *contents* cross.
"""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.sharding import iter_shard_results, shard_task


@dataclass(frozen=True)
class Task:
    site: str
    seed: int


def work(task):
    return task.seed


def fan_out(sites, seed):
    tasks = [Task(site, seed + i) for i, site in enumerate(sites)]
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(work, task) for task in tasks]
    return [f.result() for f in futures]


def fan_out_threads(paths):
    with open("data.bin", "rb") as handle:
        payload = handle.read()
    with ThreadPoolExecutor() as pool:
        futures = [pool.submit(lambda p=p: len(p), p) for p in [payload]]
    return [f.result() for f in futures]


def merge_shards(manifest, occasion, run_dir, sites, seeds, workers):
    tasks = [shard_task(manifest, occasion, run_dir, site, seeds[site])
             for site in sites]
    return list(iter_shard_results(tasks, workers))
