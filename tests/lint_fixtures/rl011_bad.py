"""RL011 bad: durability leaking out of the parent process.

Line-pinned sins: a raw ``os.replace`` commit and a ``CampaignLog``
construction outside the parent-side modules, and a worker entry point
submitted to a process pool that *reaches* an ``os.replace`` through
the call graph.
"""

import os
from concurrent.futures import ProcessPoolExecutor

from repro.core.campaign import CampaignLog


def sloppy_commit(tmp, final):
    os.replace(tmp, final)


def sloppy_wal(run_dir):
    return CampaignLog(run_dir / "wal.jsonl")


def _persist(result, path):
    tmp = path.with_suffix(".tmp")
    tmp.write_bytes(result)
    os.replace(tmp, path)


def worker_entry(task):
    result = bytes(task.seed)
    _persist(result, task.out_path)
    return task.site


def fan_out(tasks):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(worker_entry, task) for task in tasks]
    return [f.result() for f in futures]
