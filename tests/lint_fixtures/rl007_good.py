"""RL007 good fixture: causes from the central taxonomy only."""


def charge_egress(row, n):
    row.drops["mirror-egress"] += n  # in CAUSES


def charge_capture(drops, stats):
    drops["nic-ring"] = stats.ring_drops
    drops["writer-backpressure"] = stats.writer_drops
    drops["filtered"] = stats.frames_filtered


def read_known(drops):
    return drops.get("fault-window", 0)


def record_via_api(ledger, n):
    ledger.add_drop("parse-error", n)  # staged extra in STAGE_OF_CAUSE


def unrelated_mapping(colors):
    # A `drops`-free mapping is out of scope for the rule entirely.
    return colors["magenta"]
