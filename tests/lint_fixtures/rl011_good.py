"""RL011 good: workers compute, the parent commits.

Worker functions return plain results; every durable write happens on
the parent side of the boundary after the future resolves (and the
actual replace/fsync machinery lives in the allowed modules --
``util/atomio.py`` -- which this fixture only *calls*).
"""

from concurrent.futures import ProcessPoolExecutor

from repro.util.atomio import atomic_write_text


def worker_entry(task):
    return f"{task.site}:{task.seed}"


def fan_out(tasks, out_dir):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(worker_entry, task) for task in tasks]
        results = [f.result() for f in futures]
    for task, result in zip(tasks, results):
        atomic_write_text(out_dir / f"{task.site}.txt", result)
    return results
