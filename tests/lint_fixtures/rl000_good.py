"""RL000 good: every suppression pragma states why it is sound."""

import time

# reprolint: disable-file=RL006 -- fixture exercises broad excepts

started = time.perf_counter()  # reprolint: disable=RL001 -- volatile stage timing
elapsed = time.perf_counter() - started  # reprolint: disable=RL001 -- volatile stage timing
