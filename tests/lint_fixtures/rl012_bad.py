"""RL012 bad: seed provenance severed from the derivation tree.

Line-pinned sins: a raw integer seed in ``default_rng``, a numeric
derivation label, an int literal passed into a seed-typed parameter
through the call graph, and a live RNG object shipped across a process
boundary instead of a seed.
"""

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.util.rng import derive_rng


def forked_stream():
    return np.random.default_rng(42)


def numeric_domain(seed):
    return derive_rng(seed, 123)


def build_stream(seed):
    return np.random.default_rng(seed)


def int_literal_caller():
    return build_stream(1234)


def sample(rng, task):
    return float(rng.random()) + task


def fan_out(tasks):
    rng = derive_rng(3, "fixture/pool")
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(sample, rng, task) for task in tasks]
    return [f.result() for f in futures]
