"""RL003 good fixture: delays charged to the simulator."""


def wait_for_backend(sim, seconds):
    sim.run(until=sim.now + seconds)  # sim-time delay


def wait_via_api(api, delay):
    api.wait(delay)  # the resilient-API wrapper charges sim time
