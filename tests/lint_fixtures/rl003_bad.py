"""RL003 bad fixture: real sleeps in simulated code."""

import asyncio
import time
from time import sleep as nap


def wait_for_backend():
    time.sleep(0.5)  # BAD: wall-time delay, zero sim time


def wait_aliased():
    nap(1.0)  # BAD: aliased from-import


async def wait_async():
    await asyncio.sleep(2.0)  # BAD: same, async flavor
