"""RL008 good: the two sanctioned durable-write patterns (and reads).

Appends can only tear the final line (readers tolerate, reopening
truncates); atomic_write_* goes through temp file + fsync + os.replace.
"""

import json
from pathlib import Path

from repro.util.atomio import atomic_write_bytes, atomic_write_text


def append_record(path: Path, line: str) -> None:
    with open(path, "ab") as handle:
        handle.write(line.encode("utf-8"))


def commit_snapshot(path: Path, payload: dict) -> None:
    atomic_write_text(path, json.dumps(payload) + "\n")


def commit_blob(path: Path, blob: bytes) -> None:
    atomic_write_bytes(path, blob)


def truncate_torn_tail(path: Path, valid_bytes: int) -> None:
    # Recovery truncation: "r+" does not clobber on open.
    with open(path, "r+b") as handle:
        handle.truncate(valid_bytes)


def read_state(path: Path) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()
