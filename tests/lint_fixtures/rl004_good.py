"""RL004 good fixture: the shipped fixes for the PR 3 desync bug."""

import numpy as np

from repro.util.rng import derive_rng

_TEMPLATE_CACHE = {}


class FlowTemplate:
    def __init__(self, app, rng):
        self.app = app
        self.rng = rng

    def build(self, kind):
        key = (self.app.name, kind)
        if key in _TEMPLATE_CACHE:
            return _TEMPLATE_CACHE[key]
        # OK: the draw uses a LOCAL generator derived from stable
        # inputs, so cache state cannot desync the shared stream.
        header_rng = np.random.default_rng(hash(key) & 0xFFFF)
        header = self.app.app_header(header_rng.integers(0, 2**16))
        _TEMPLATE_CACHE[key] = header
        return header


def sample_cached(cache, seed, key):
    cached = cache.get(key)
    if cached is not None:
        return cached
    local_rng = derive_rng(seed, str(key))
    value = local_rng.normal()  # OK: derived stream, not shared
    cache[key] = value
    return value


def draw_unconditionally(cache, rng, key):
    # OK: the shared stream is consumed on BOTH paths, so sibling runs
    # stay in lockstep regardless of cache state.
    drawn = rng.normal()
    if key in cache:
        return cache[key]
    cache[key] = drawn
    return drawn
