"""RL002 good fixture: seeded draws, stable orders."""

import uuid

import numpy as np

from repro.util.rng import derive_rng


def seeded_generator(seed):
    return np.random.default_rng(seed)  # seeded: fine


def derived_generator(seed):
    return derive_rng(seed, "fixture")


def stable_name_id(name):
    # uuid5 is a pure hash of its inputs -- deterministic, allowed.
    return uuid.uuid5(uuid.NAMESPACE_DNS, name)


def stable_order(names):
    ordered = sorted(set(names))  # sorted() launders the set
    for name in ordered:
        yield name


def keyed_sort(items):
    return sorted(items, key=str)  # stable key: fine
