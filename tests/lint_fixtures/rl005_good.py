"""RL005 good fixture: volatile= is the sanctioned wall-time sink."""

import time


def record_stage(journal):
    started = time.perf_counter()  # reprolint: disable=RL001 -- volatile timing
    work()
    elapsed = time.perf_counter() - started  # reprolint: disable=RL001 -- volatile timing
    # OK: wall-derived values ride in volatile=, which a deterministic
    # journal discards, keeping byte-identity.
    journal.emit("stage-done", stage="digest",
                 volatile={"seconds": elapsed})


def record_sim_time(journal, sim, frames):
    # OK: sim-derived values are deterministic event fields.
    journal.emit("sample-closed", t=sim.now, frames=frames)


def work():
    pass
