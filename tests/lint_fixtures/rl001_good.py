"""RL001 good fixture: time from the simulator, pragma'd benchmarks."""

import time
from datetime import timezone, datetime


def stamp_event(sim):
    return sim.now  # sim time is the sanctioned clock


def sample_window(clock):
    return clock.now()  # the obs clock abstraction, not a wall read


def benchmark_stage():
    started = time.perf_counter()  # reprolint: disable=RL001 -- volatile timing
    return started


def tz_aware():
    # Explicit tz argument is out of scope for RL001 (never accidental).
    return datetime.now(timezone.utc)
