"""RL006 good fixture: narrow, re-raising, or journaled handlers."""

from repro.testbed.errors import AllocationError, TransientBackendError


def place_and_rollback(site, request, created_vms, journal, sim):
    try:
        return site.place(request)
    except AllocationError as exc:  # OK: concrete error family
        journal.emit("allocator-rollback", t=sim.now, error=str(exc))
        for vm in created_vms:
            vm.destroy()
        raise


def retry_wrapper(fn):
    try:
        return fn()
    except Exception:
        # OK: broad, but visibly re-raised for the caller to classify.
        raise


def poll_with_record(poller, journal):
    try:
        return poller.read()
    except Exception as exc:
        # OK: broad, but the swallowed failure reaches the journal.
        journal.emit("poller-error", error=str(exc))
        return 0


def narrow_only(api):
    try:
        return api.call()
    except TransientBackendError:  # OK: narrow
        return None
