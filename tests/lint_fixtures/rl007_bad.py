"""RL007 bad fixture: drop causes that bypass the ledger taxonomy."""


def charge_typo(row, n):
    row.drops["mirror-egres"] += n  # BAD: typo'd cause (missing 's')


def charge_adhoc(ledger, n):
    ledger.drops["ring"] = n  # BAD: ad-hoc cause, not in CAUSES


def read_unknown(drops):
    return drops.get("queue-overflow", 0)  # BAD: unknown cause key


def record_via_api(ledger, n):
    ledger.add_drop("oops", n)  # BAD: recorder call with unknown cause
