"""RL009 bad: every way the journal event-schema contract can break.

Line-pinned sins:
- ``"sheduled"`` is a typo of the consumed kind ``"scheduled"`` -- the
  emit is orphaned and the consumer starves (did-you-mean both ways);
- the second ``"report"`` emit drifts its key set from the first;
- ``"report"`` is emitted but nothing ever reads it back.
"""


def emit_events(journal, now):
    journal.emit("sheduled", t=now, site="site-a", frames=10)
    journal.emit("report", t=now, site="site-a", frames=10, drops=0)
    journal.emit("report", t=now, site="site-a", bytes=512)


def read_back(journal):
    return list(journal.of_kind("scheduled"))
