"""RL008 bad: truncating writes that clobber durable run state in place.

A crash between the truncating open (or write_text/write_bytes) and the
final flush loses BOTH the old state and the new state.
"""

import json
from pathlib import Path

WAL = Path("campaign.wal")


def clobber_wal(records):
    with open(WAL, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


def clobber_checkpoint(path: Path, payload: dict) -> None:
    path.write_text(json.dumps(payload))


def clobber_snapshot(path: Path, blob: bytes) -> None:
    path.write_bytes(blob)


def exclusive_create(path: Path) -> None:
    with open(path, mode="xb") as handle:
        handle.write(b"{}")
