"""RL002 bad fixture: every flavor of hidden nondeterminism."""

import os
import random
import uuid

import numpy as np


def stdlib_random():
    return random.randint(0, 10)  # BAD: process-global RNG


def unseeded_generator():
    return np.random.default_rng()  # BAD: OS-entropy seed


def legacy_global_draw():
    return np.random.rand(3)  # BAD: legacy global RandomState


def entropy_sources():
    return uuid.uuid4(), os.urandom(8)  # BAD: both


def address_order(items):
    return sorted(items, key=id)  # BAD: memory-address order


def set_order(names):
    listed = list(set(names))  # BAD: hash order into a list
    for name in {n.lower() for n in names}:  # BAD: bare set iteration
        listed.append(name)
    return listed
