"""RL005 bad fixture: wall-derived values journaled without volatile."""

import time


def record_stage(journal):
    started = time.perf_counter()
    work()
    elapsed = time.perf_counter() - started
    # BAD: `elapsed` is wall-derived; two seeded runs emit different
    # journals and `repro obs diff` turns red.
    journal.emit("stage-done", stage="digest", seconds=elapsed)


def record_direct(obs):
    # BAD: direct wall read in the event payload.
    obs.journal.emit("heartbeat", at=time.time())


def record_explicit_t(journal):
    # BAD: explicit t= bypasses the clock and bakes in wall time.
    journal.emit("tick", t=time.monotonic())


def work():
    pass
