"""RL010 bad: unpicklable values shipped across process boundaries.

Line-pinned sins: an open file handle submitted as an argument, a
lambda and a nested closure as the submitted callable, and live
``RunJournal`` objects flowing into ``iter_shard_results``.
"""

from concurrent.futures import ProcessPoolExecutor

from repro.core.sharding import iter_shard_results
from repro.obs.journal import RunJournal


def work(payload):
    return len(payload)


def fan_out(paths):
    handle = open("data.bin", "rb")
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(work, handle)]
        futures.append(pool.submit(lambda: 1))

        def local_work():
            return 2

        futures.append(pool.submit(local_work))
    return [f.result() for f in futures]


def merge_shards(paths, workers):
    journals = [RunJournal.read(path) for path in paths]
    return list(iter_shard_results(journals, workers))
