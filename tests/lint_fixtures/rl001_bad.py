"""RL001 bad fixture: wall-clock reads outside the clock boundary."""

import time as walltime
from datetime import datetime
from time import monotonic as mono

import time


def stamp_event():
    return time.time()  # BAD: wall clock in deterministic code


def measure():
    start = walltime.perf_counter()  # BAD: aliased module import
    middle = mono()  # BAD: aliased from-import
    return start, middle, datetime.now()  # BAD: argless datetime.now
