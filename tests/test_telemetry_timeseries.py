"""Tests for the counter store."""

import pytest

from repro.telemetry.timeseries import CounterStore


@pytest.fixture()
def store():
    s = CounterStore()
    for t, v in [(0.0, 0), (300.0, 1000), (600.0, 2500), (900.0, 2500)]:
        s.append("STAR", "p1", "tx_bytes", t, v)
    s.append("STAR", "p2", "tx_bytes", 0.0, 0)
    s.append("MICH", "p1", "rx_bytes", 0.0, 7)
    return s


class TestAppendAndQuery:
    def test_series(self, store):
        series = store.series("STAR", "p1", "tx_bytes")
        assert len(series) == 4
        assert series[-1].value == 2500

    def test_series_missing_is_empty(self, store):
        assert store.series("STAR", "p9", "tx_bytes") == []

    def test_monotonic_time_enforced(self, store):
        with pytest.raises(ValueError):
            store.append("STAR", "p1", "tx_bytes", 100.0, 9)

    def test_equal_time_allowed(self, store):
        store.append("STAR", "p1", "tx_bytes", 900.0, 2600)

    def test_window(self, store):
        window = store.window("STAR", "p1", "tx_bytes", 300.0, 600.0)
        assert [s.value for s in window] == [1000, 2500]

    def test_window_boundaries_inclusive(self, store):
        window = store.window("STAR", "p1", "tx_bytes", 0.0, 900.0)
        assert len(window) == 4

    def test_latest(self, store):
        assert store.latest("STAR", "p1", "tx_bytes").value == 2500
        assert store.latest("X", "Y", "Z") is None

    def test_latest_before(self, store):
        sample = store.latest_before("STAR", "p1", "tx_bytes", 450.0)
        assert sample.time == 300.0
        assert store.latest_before("STAR", "p1", "tx_bytes", -1.0) is None

    def test_latest_before_exact_time(self, store):
        assert store.latest_before("STAR", "p1", "tx_bytes", 300.0).time == 300.0


class TestEnumeration:
    def test_ports(self, store):
        assert store.ports("STAR") == ["p1", "p2"]

    def test_sites(self, store):
        assert store.sites() == ["MICH", "STAR"]

    def test_len_counts_samples(self, store):
        assert len(store) == 6

    def test_keys(self, store):
        assert ("STAR", "p1", "tx_bytes") in set(store.keys())


class TestWindowEdges:
    """Boundary semantics the MFlib delta math depends on."""

    def test_window_start_edge_only(self, store):
        window = store.window("STAR", "p1", "tx_bytes", 900.0, 1000.0)
        assert [s.time for s in window] == [900.0]

    def test_window_between_samples_is_empty(self, store):
        assert store.window("STAR", "p1", "tx_bytes", 301.0, 599.0) == []

    def test_window_before_first_sample_is_empty(self, store):
        assert store.window("STAR", "p1", "tx_bytes", -100.0, -1.0) == []

    def test_decreasing_values_storable(self, store):
        # Counter *values* may fall (a switch restart zeroes them);
        # only time must be monotone.  MFlib handles the reset.
        store.append("STAR", "p1", "tx_bytes", 1200.0, 0)
        assert store.latest("STAR", "p1", "tx_bytes").value == 0
