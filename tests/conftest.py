"""Shared fixtures.

The expensive fixtures (a federation with live traffic, a completed
Patchwork profile) are session-scoped so the whole suite pays for them
once; tests that need to mutate state build their own small worlds.
"""

from __future__ import annotations


import pytest

from repro.core import Coordinator, PatchworkConfig, SamplingPlan
from repro.telemetry import MFlib, SNMPPoller
from repro.testbed import FederationBuilder, TestbedAPI
from repro.traffic.workloads import TrafficOrchestrator

SMALL_SITES = ["STAR", "MICH", "UTAH", "TACC"]


@pytest.fixture()
def federation():
    """A fresh four-site federation (function-scoped: mutate freely)."""
    return FederationBuilder(seed=42).build(site_names=SMALL_SITES)


@pytest.fixture()
def api(federation):
    return TestbedAPI(federation)


@pytest.fixture()
def poller(federation):
    p = SNMPPoller(federation, interval=10.0)
    p.start()
    return p


@pytest.fixture()
def mflib(poller):
    return MFlib(poller.store)


@pytest.fixture(scope="session")
def profiled_bundle_and_pipeline(tmp_path_factory):
    """One completed Patchwork profile over live traffic, plus analysis.

    Session-scoped: several integration tests read from it.
    """
    from repro.analysis import AnalysisPipeline

    fed = FederationBuilder(seed=42).build(site_names=SMALL_SITES)
    api = TestbedAPI(fed)
    poller = SNMPPoller(fed, interval=15.0)
    poller.start()
    orch = TrafficOrchestrator(fed, seed=7, scale=0.05)
    orch.setup()
    for window in range(3):
        orch.generate_window(window * 100.0, 100.0)
    out = tmp_path_factory.mktemp("profile")
    config = PatchworkConfig(
        output_dir=out,
        plan=SamplingPlan(sample_duration=5, sample_interval=30,
                          samples_per_run=2, runs_per_cycle=1, cycles=2),
        desired_instances=2,
    )
    coordinator = Coordinator(api, config, poller=poller)
    bundle = coordinator.run_profile()
    pipeline = AnalysisPipeline(acap_dir=out / "acap")
    report = pipeline.run(bundle.pcap_paths)
    return bundle, pipeline, report
