"""Tests for NIC models."""

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.frame import Frame
from repro.netsim.link import DuplexLink
from repro.testbed.nic import DedicatedNIC, FPGANic, SharedNIC


def frame():
    return Frame(wire_len=100, head=b"\x00" * 60)


class TestNicPorts:
    def test_dedicated_is_dual_port(self):
        assert len(DedicatedNIC("d").ports) == 2

    def test_shared_is_single_port(self):
        assert len(SharedNIC("s").ports) == 1

    def test_send_requires_attachment(self):
        nic = DedicatedNIC("d")
        with pytest.raises(RuntimeError):
            nic.ports[0].send(frame())

    def test_attach_once(self):
        sim = Simulator()
        nic = DedicatedNIC("d")
        link = DuplexLink(sim, 1e9)
        nic.ports[0].attach(link, "p1")
        with pytest.raises(RuntimeError):
            nic.ports[0].attach(link, "p2")

    def test_send_and_receive(self):
        sim = Simulator()
        nic = DedicatedNIC("d")
        link = DuplexLink(sim, 1e9)
        nic.ports[0].attach(link, "p1")
        # Receive path: frames delivered by the switch's tx channel.
        got = []
        nic.ports[0].receive(got.append)
        link.tx.offer(frame())
        sim.run()
        assert len(got) == 1
        # Send path: frames offered to the rx channel.
        assert nic.ports[0].send(frame())
        sim.run()
        assert link.rx.stats.tx_frames == 1

    def test_stop_receiving(self):
        sim = Simulator()
        nic = DedicatedNIC("d")
        link = DuplexLink(sim, 1e9)
        nic.ports[0].attach(link, "p1")
        got = []
        nic.ports[0].receive(got.append)
        nic.ports[0].stop_receiving(got.append)
        link.tx.offer(frame())
        sim.run()
        assert got == []


class TestAllocation:
    def test_allocate_release(self):
        nic = DedicatedNIC("d")
        nic.allocate("slice-1")
        assert nic.allocated
        assert nic.owner_slice == "slice-1"
        nic.release()
        assert not nic.allocated

    def test_double_allocate_rejected(self):
        nic = DedicatedNIC("d")
        nic.allocate("a")
        with pytest.raises(RuntimeError):
            nic.allocate("b")


class TestSharedNIC:
    def test_vf_accounting(self):
        nic = SharedNIC("s", vf_slots=2)
        nic.allocate_vf()
        nic.allocate_vf()
        with pytest.raises(RuntimeError):
            nic.allocate_vf()
        nic.release_vf()
        nic.allocate_vf()  # slot freed

    def test_release_underflow(self):
        with pytest.raises(RuntimeError):
            SharedNIC("s").release_vf()

    def test_default_vf_slots_matches_paper(self):
        # The paper's NCSA example: one card shared among 381 users.
        assert SharedNIC("s").vf_slots == 381


class TestFPGA:
    def test_programming(self):
        nic = FPGANic("f")
        assert nic.bitstream is None
        nic.program("patchwork-esnet-smartnic")
        assert nic.bitstream == "patchwork-esnet-smartnic"

    def test_dual_port(self):
        assert len(FPGANic("f").ports) == 2
