"""Tests for the Analyze step's statistics."""


from repro.analysis.acap import AcapRecord
from repro.analysis.analyze import (
    encapsulation_examples, frame_size_distribution, header_occurrence,
    ip_version_shares, jumbo_fraction, site_header_diversity,
)


def rec(size=1544, stack=("eth", "vlan", "mpls", "ipv4", "tcp"), ipv=4):
    return AcapRecord(timestamp=0.0, wire_len=size, captured_len=200,
                      stack=tuple(stack), ip_version=ipv)


PW_STACK = ("eth", "vlan", "mpls", "mpls", "pw", "eth", "ipv4", "tcp", "tls")


class TestFrameSizes:
    def test_distribution_keys_are_bin_labels(self):
        dist = frame_size_distribution([rec(100), rec(1544)])
        assert dist["65-127"] == 0.5
        assert dist["1519-2047"] == 0.5

    def test_jumbo_fraction(self):
        records = [rec(1544), rec(9000), rec(100), rec(1500)]
        assert jumbo_fraction(records) == 0.5

    def test_jumbo_fraction_empty(self):
        assert jumbo_fraction([]) == 0.0


class TestHeaderOccurrence:
    def test_percentages(self):
        records = [rec(), rec(stack=("eth", "ipv4", "udp", "dns"))]
        occurrence = header_occurrence(records)
        assert occurrence["eth"] == 100.0
        assert occurrence["vlan"] == 50.0
        assert occurrence["dns"] == 50.0

    def test_ethernet_exceeds_100_with_pseudowires(self):
        """Fig 12: 'Ethernet exceeds 100% because Ethernet frames often
        carry other Ethernet frames.'"""
        records = [rec(stack=PW_STACK), rec()]
        occurrence = header_occurrence(records)
        assert occurrence["eth"] == 150.0

    def test_empty(self):
        assert header_occurrence([]) == {}


class TestDiversity:
    def test_per_site_counts(self):
        by_site = {
            "S0": [rec(), rec(stack=PW_STACK)],
            "S1": [rec(stack=("eth", "ipv4", "tcp"))],
        }
        diversity = site_header_diversity(by_site)
        assert [d.site for d in diversity] == ["S0", "S1"]
        s0 = diversity[0]
        assert s0.distinct_headers == len(set(PW_STACK) | {"eth", "vlan", "mpls", "ipv4", "tcp"})
        assert s0.max_stack_depth == len(PW_STACK)
        assert diversity[1].distinct_headers == 3


class TestIpShares:
    def test_shares(self):
        records = [rec(ipv=4)] * 97 + [rec(ipv=6)] * 2 + [
            rec(stack=("eth", "arp"), ipv=0)]
        shares = ip_version_shares(records)
        assert shares["ipv4"] == 0.97
        assert shares["ipv6"] == 0.02
        assert shares["non-ip"] == 0.01

    def test_empty(self):
        shares = ip_version_shares([])
        assert shares["ipv4"] == 0.0


class TestEncapsulationExamples:
    def test_most_common_first(self):
        records = [rec()] * 3 + [rec(stack=PW_STACK)]
        examples = encapsulation_examples(records, top=2)
        assert examples[0] == ("eth/vlan/mpls/ipv4/tcp", 3)
        assert examples[1][1] == 1
