"""Sharded campaign execution: parity, shard-commit reuse, fold units.

The tentpole claim is byte-identity: a sharded campaign produces the
same canonical journal, records, and clean audit at *any* worker count,
because every shard world is seeded from ``(campaign seed, site label)``
and the per-site segments merge deterministically by
``(sim_time, site, seq)``.  The heavy tests here prove it on the tiny
two-site chaos manifest; the unit half pins the WAL shard-commit
protocol that lets a crashed shard resume without re-running verified
sites.
"""

from __future__ import annotations

import json
from types import SimpleNamespace
from typing import BinaryIO

import pytest

from repro.core.campaign import SEGMENT_DIR, CampaignRunner
from repro.core.checkpoint import (
    WalRecord,
    fold_records,
    read_wal,
    sha256_file,
)
from repro.testbed.chaos import CrashingIO, default_manifest
from repro.util.atomio import FileIO, SimulatedCrash
from repro.util.rng import derive_rng

TINY_SHARDED = default_manifest(7, sharded=True)


class RecordingIO(FileIO):
    """A FileIO that notes the op index of every shard-commit append,
    so crash tests can target the window right after one lands."""

    def __init__(self) -> None:
        super().__init__()
        self.shard_commit_ops = []

    def write(self, handle: BinaryIO, data: bytes) -> int:
        if b'"shard-commit"' in data:
            self.shard_commit_ops.append(self.ops + 1)
        return super().write(handle, data)


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted sharded run (workers=1): the parity baseline."""
    run_dir = tmp_path_factory.mktemp("sharded") / "reference"
    io = RecordingIO()
    runner = CampaignRunner(run_dir, manifest=TINY_SHARDED, io=io,
                            shard_workers=1)
    summary = runner.run()
    return SimpleNamespace(run_dir=run_dir, summary=summary, io=io)


@pytest.mark.slow
class TestShardedParity:
    def test_reference_run_is_sound(self, reference):
        assert reference.summary.audit_ok
        assert reference.summary.success_rate == 1.0
        manifest = json.loads(
            (reference.run_dir / "campaign.manifest").read_text())
        assert manifest["sharded"] is True
        for occasion in range(TINY_SHARDED.occasions):
            shard_dir = (reference.run_dir / SEGMENT_DIR /
                         f"occ{occasion:04d}.shards")
            assert sorted(p.name for p in shard_dir.glob("*.jsonl")) == \
                [f"{site}.jsonl" for site in sorted(TINY_SHARDED.sites)]

    def test_two_workers_byte_identical_to_one(self, reference, tmp_path):
        runner = CampaignRunner(tmp_path / "run", manifest=TINY_SHARDED,
                                shard_workers=2)
        summary = runner.run()
        assert summary.audit_ok
        assert sha256_file(tmp_path / "run" / "journal.jsonl") == \
            sha256_file(reference.run_dir / "journal.jsonl")
        assert summary.records_sha256 == reference.summary.records_sha256

    def test_shard_commits_are_per_site_per_occasion(self, reference):
        records, torn, _ = read_wal(reference.run_dir / "campaign.wal")
        assert not torn
        commits = [r.data for r in records if r.kind == "shard-commit"]
        keys = [(row["occasion"], row["site"]) for row in commits]
        assert sorted(keys) == sorted(
            (occ, site) for occ in range(TINY_SHARDED.occasions)
            for site in TINY_SHARDED.sites)


@pytest.mark.slow
class TestShardCrashResume:
    def test_resume_reuses_committed_shard(self, reference, tmp_path):
        """Crash right after the first shard-commit lands: resume must
        reuse that shard (no second commit for its site) and still end
        byte-identical to the uninterrupted run."""
        assert reference.io.shard_commit_ops, \
            "reference run recorded no shard-commit writes"
        # +1 skips the commit's own fsync, so the record is durable.
        crash_at = reference.io.shard_commit_ops[0] + 2
        run_dir = tmp_path / "run"
        crashing = CrashingIO(crash_at, derive_rng(11, "shard-crash"))
        with pytest.raises(SimulatedCrash):
            CampaignRunner(run_dir, manifest=TINY_SHARDED, io=crashing,
                           shard_workers=1).run()
        # Precondition: exactly one shard survived into the WAL.
        records, torn, _ = read_wal(run_dir / "campaign.wal")
        state = fold_records(records, torn=torn)
        assert sum(len(sites) for sites in state.shards.values()) == 1
        (committed_site,) = state.shards[0]

        summary = CampaignRunner(run_dir, manifest=TINY_SHARDED,
                                 shard_workers=1).run(resume=True)
        assert summary.audit_ok
        assert sha256_file(run_dir / "journal.jsonl") == \
            sha256_file(reference.run_dir / "journal.jsonl")
        assert summary.records_sha256 == reference.summary.records_sha256
        # The pre-crash shard was verified and reused, not re-run: the
        # WAL holds exactly one commit for that (occasion, site).
        records, _, _ = read_wal(run_dir / "campaign.wal")
        keys = [(r.data["occasion"], r.data["site"])
                for r in records if r.kind == "shard-commit"]
        assert keys.count((0, committed_site)) == 1
        assert sorted(keys) == sorted(
            (occ, site) for occ in range(TINY_SHARDED.occasions)
            for site in TINY_SHARDED.sites)

    def test_damaged_shard_segment_is_rerun(self, reference, tmp_path):
        """A shard whose segment file was lost after its commit fails
        per-shard verification on resume and is re-run, not trusted."""
        crash_at = reference.io.shard_commit_ops[0] + 2
        run_dir = tmp_path / "run"
        crashing = CrashingIO(crash_at, derive_rng(13, "shard-damage"))
        with pytest.raises(SimulatedCrash):
            CampaignRunner(run_dir, manifest=TINY_SHARDED, io=crashing,
                           shard_workers=1).run()
        for segment in (run_dir / SEGMENT_DIR).glob("occ*.shards/*.jsonl"):
            segment.unlink()
        summary = CampaignRunner(run_dir, manifest=TINY_SHARDED,
                                 shard_workers=1).run(resume=True)
        assert summary.audit_ok
        assert sha256_file(run_dir / "journal.jsonl") == \
            sha256_file(reference.run_dir / "journal.jsonl")


class TestShardFoldUnits:
    """WAL-level semantics of the shard-commit record, no campaign."""

    @staticmethod
    def _record(seq, kind, data):
        return WalRecord(seq=seq, kind=kind, data=data)

    def test_fold_indexes_shard_commits_by_occasion_and_site(self):
        state = fold_records([
            self._record(0, "occasion-begin", {"occasion": 0}),
            self._record(1, "shard-commit",
                         {"occasion": 0, "site": "STAR", "samples": []}),
            self._record(2, "shard-commit",
                         {"occasion": 0, "site": "MICH", "samples": []}),
        ])
        assert set(state.shards[0]) == {"STAR", "MICH"}

    def test_occasion_begin_does_not_reset_shards(self):
        """A resume re-begins the occasion; verified shard commits must
        survive that (they are keyed to seeds begin_occasion checks)."""
        state = fold_records([
            self._record(0, "occasion-begin", {"occasion": 0}),
            self._record(1, "shard-commit",
                         {"occasion": 0, "site": "STAR", "samples": []}),
            self._record(2, "occasion-begin", {"occasion": 0}),
        ])
        assert "STAR" in state.shards[0]

    def test_salvageable_includes_shard_sample_rows(self):
        rows = [{"occasion": 0, "site": "STAR", "sample": 0, "pcap": "a"}]
        state = fold_records([
            self._record(0, "occasion-begin", {"occasion": 0}),
            self._record(1, "shard-commit",
                         {"occasion": 0, "site": "STAR", "samples": rows}),
        ])
        assert state.salvageable(0) == rows

    def test_salvageable_merges_wal_rows_and_shard_rows(self):
        wal_row = {"occasion": 0, "site": "MICH", "sample": 0, "pcap": "m"}
        shard_row = {"occasion": 0, "site": "STAR", "sample": 0, "pcap": "s"}
        state = fold_records([
            self._record(0, "occasion-begin", {"occasion": 0}),
            self._record(1, "sample", wal_row),
            self._record(2, "shard-commit",
                         {"occasion": 0, "site": "STAR",
                          "samples": [shard_row]}),
        ])
        assert state.salvageable(0) == [wal_row, shard_row]

    def test_committed_occasion_has_nothing_to_salvage(self):
        state = fold_records([
            self._record(0, "occasion-begin", {"occasion": 0}),
            self._record(1, "shard-commit",
                         {"occasion": 0, "site": "STAR",
                          "samples": [{"sample": 0}]}),
            self._record(2, "occasion-commit", {"occasion": 0}),
        ])
        assert state.salvageable(0) == []
