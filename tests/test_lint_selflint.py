"""The shipped tree must satisfy its own invariants.

This is the acceptance gate for the linter as a CI fixture: if a change
to ``src/repro`` introduces a wall-clock read, a hidden entropy source,
a ``time.sleep``, a cache-gated RNG draw, an impure journal field, a
silent broad except, or an off-taxonomy drop cause, this test fails
before the behavioral suites ever run.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.cli import main

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"


def test_shipped_tree_is_lint_clean(capsys):
    assert main(["lint", str(SRC)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_shipped_tree_json_accounting(capsys):
    assert main(["lint", "--json", str(SRC)]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is True
    assert document["violations"] == []
    assert document["files_checked"] > 50
    # Exemptions stay visible, not invisible: pipeline stage timings
    # (RL001) and gather's in-memory tarfile buffer (RL008, landed via
    # atomic_write_bytes) are pragma'd, never silently dropped.
    assert len(document["suppressed"]) >= 1
    assert {entry["rule"] for entry in document["suppressed"]} == \
        {"RL001", "RL008"}


def test_no_bytecode_tracked_in_git():
    proc = subprocess.run(
        ["git", "ls-files"], cwd=REPO, capture_output=True, text=True)
    if proc.returncode != 0:  # not a git checkout (e.g. sdist)
        return
    tracked = proc.stdout.splitlines()
    offenders = [p for p in tracked
                 if "__pycache__" in p or p.endswith((".pyc", ".pyo"))]
    assert offenders == [], f"bytecode committed to git: {offenders}"


def test_devtools_not_imported_by_runtime():
    """The linter is a dev tool: no runtime module may depend on it."""
    importers = []
    for path in SRC.rglob("*.py"):
        if "devtools" in path.parts or path.name == "cli.py":
            continue  # cli.py is the sanctioned (lazy) entry point
        if "repro.devtools" in path.read_text():
            importers.append(str(path.relative_to(REPO)))
    assert importers == [], f"runtime imports devtools: {importers}"
    # And importing the runtime package must not pull devtools in.
    probe = ("import sys, repro.cli; "
             "sys.exit(1 if any(m.startswith('repro.devtools') "
             "for m in sys.modules) else 0)")
    result = subprocess.run(
        [sys.executable, "-c", probe], cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})
    assert result.returncode == 0
