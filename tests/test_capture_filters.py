"""Tests for the capture-filter language."""

import pytest

from repro.capture.filters import FilterSyntaxError, compile_filter
from repro.packets.builder import FrameBuilder, FrameSpec
from repro.packets.headers import (
    ARP, Ethernet, IPv4, IPv6, MPLS, Payload, PseudoWireControlWord, TCP,
    TLSRecord, UDP, VLAN,
)

E1, E2 = "02:00:00:00:00:01", "02:00:00:00:00:02"


def frame(stack, target=None):
    return FrameBuilder().build(FrameSpec(stack, target_size=target))


TLS_FRAME = frame([Ethernet(E1, E2), VLAN(100), MPLS(16001),
                   IPv4("10.0.0.1", "10.0.0.2"), TCP(50000, 443),
                   TLSRecord(), Payload(64)])
DNS_FRAME = frame([Ethernet(E1, E2), VLAN(200),
                   IPv4("10.0.0.3", "10.0.0.4"), UDP(40000, 53),
                   Payload(40)])
V6_FRAME = frame([Ethernet(E1, E2), IPv6("fd00::1", "fd00::2"),
                  UDP(1, 2), Payload(20)])
PW_FRAME = frame([Ethernet(E1, E2), VLAN(100), MPLS(16), MPLS(17),
                  PseudoWireControlWord(), Ethernet(E1, E2),
                  IPv4("10.0.0.9", "10.0.0.8"), TCP(1, 22), Payload(30)])
ARP_FRAME = frame([Ethernet(E1, E2), ARP(E1, "10.0.0.1")])


class TestPrimitives:
    def test_protocol_keywords(self):
        assert compile_filter("tcp")(TLS_FRAME)
        assert not compile_filter("tcp")(DNS_FRAME)
        assert compile_filter("udp")(DNS_FRAME)
        assert compile_filter("tls")(TLS_FRAME)
        assert compile_filter("arp")(ARP_FRAME)
        assert compile_filter("pw")(PW_FRAME)

    def test_ip_versions(self):
        assert compile_filter("ip")(TLS_FRAME)
        assert not compile_filter("ip")(V6_FRAME)
        assert compile_filter("ip6")(V6_FRAME)

    def test_port(self):
        assert compile_filter("port 443")(TLS_FRAME)
        assert compile_filter("port 50000")(TLS_FRAME)
        assert not compile_filter("port 80")(TLS_FRAME)

    def test_vlan_and_mpls(self):
        assert compile_filter("vlan 100")(TLS_FRAME)
        assert not compile_filter("vlan 200")(TLS_FRAME)
        assert compile_filter("mpls 16001")(TLS_FRAME)

    def test_addresses(self):
        assert compile_filter("src 10.0.0.1")(TLS_FRAME)
        assert not compile_filter("src 10.0.0.2")(TLS_FRAME)
        assert compile_filter("dst 10.0.0.2")(TLS_FRAME)
        assert compile_filter("host 10.0.0.1")(TLS_FRAME)
        assert compile_filter("host 10.0.0.2")(TLS_FRAME)
        assert not compile_filter("host 10.9.9.9")(TLS_FRAME)


class TestCombinators:
    def test_and(self):
        f = compile_filter("vlan 100 and tcp")
        assert f(TLS_FRAME)
        assert not f(DNS_FRAME)

    def test_or(self):
        f = compile_filter("tls or dns")
        assert f(TLS_FRAME)
        assert f(DNS_FRAME)
        assert not f(ARP_FRAME)

    def test_not(self):
        f = compile_filter("not ip6")
        assert f(TLS_FRAME)
        assert not f(V6_FRAME)

    def test_precedence_and_over_or(self):
        # a or b and c == a or (b and c)
        f = compile_filter("arp or vlan 100 and udp")
        assert f(ARP_FRAME)
        assert not f(TLS_FRAME)  # vlan 100 but tcp

    def test_parentheses(self):
        f = compile_filter("(arp or vlan 100) and tcp")
        assert f(TLS_FRAME)
        assert not f(ARP_FRAME)

    def test_nested_not(self):
        f = compile_filter("not not tcp")
        assert f(TLS_FRAME)

    def test_excludes_own_ssh(self):
        """The classic operational filter: everything except port 22."""
        f = compile_filter("ip and not port 22")
        assert f(TLS_FRAME)
        assert not f(PW_FRAME)  # inner dport is 22


class TestErrors:
    @pytest.mark.parametrize("expression", [
        "", "port", "port abc", "frobnicate", "(tcp", "tcp )", "tcp tcp",
    ])
    def test_syntax_errors(self, expression):
        with pytest.raises(FilterSyntaxError):
            compile_filter(expression)


class TestIntegration:
    def test_filter_in_capture_session(self, tmp_path):
        import numpy as np
        from repro.capture.fpga import FpgaOffloadConfig
        from repro.capture.session import CaptureMethod, CaptureSession
        from repro.packets.pcap import PcapReader
        from repro.testbed import FederationBuilder
        from repro.traffic.endpoints import EndpointRegistry
        from repro.traffic.flows import STANDARD_APPS, Flow

        federation = FederationBuilder(seed=42).build(site_names=["STAR", "MICH"])
        registry = EndpointRegistry(federation)
        a, b = registry.create("STAR"), registry.create("STAR")
        # Two flows: one TLS (port 443), one iperf (port 5201).
        for app, fid in (("tls-web", 1), ("iperf-tcp", 2)):
            Flow(sim=federation.sim, flow_id=fid, src=a, dst=b,
                 app=STANDARD_APPS[app], total_bytes=50_000,
                 rng=np.random.default_rng(fid)).start()
        only_tls = compile_filter("port 443")
        session = CaptureSession(
            federation.sim, b.nic_port, tmp_path / "tls.pcap",
            method=CaptureMethod.FPGA_DPDK,
            fpga_config=FpgaOffloadConfig(truncation=200,
                                          frame_filter=only_tls),
        )
        session.start()
        federation.sim.run()
        stats = session.stop()
        assert stats.frames_captured > 0
        for record in PcapReader(tmp_path / "tls.pcap"):
            assert only_tls(record.data)
