"""Streaming telemetry: query plans, sketches, in-band stamps, detectors.

Three properties anchor the subsystem and get the heaviest coverage:

* **never undercount** -- a count-min estimate is always >= the true
  count (property-tested with hypothesis), and overcounts beyond
  ``epsilon * total_weight`` happen with probability ~``delta``;
* **determinism** -- sketches, reports, and whole telemetry-enabled
  campaigns are byte-identical across runs and across
  ``--shard-workers`` counts under a fixed seed;
* **clean peel** -- in-band stamps never leak into captured bytes: the
  capture host strips the shim and restores the original frame.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.frame import Frame
from repro.telemetry.query import (
    EGRESS_LOAD_QUERY,
    SHIM_LEN,
    CountMinSketch,
    HeavyHitters,
    InbandCongestionDetector,
    IntStamper,
    Query,
    QueryRuntime,
    SketchCongestionDetector,
    SketchReport,
    StampLog,
    TelemetryShim,
    compile_plan,
    peel,
    snmp_reading,
)
from repro.telemetry.query.plan import FrameView
from repro.testbed.chaos import default_manifest
from repro.util.rng import derive_rng

# ---------------------------------------------------------------------------
# Query plans


class TestQueryPlan:
    def test_builder_produces_frozen_plan(self):
        plan = (Query("q").filter(("direction", "==", "tx"))
                .map(key="port", value="wire_len")
                .reduce("count-min", epsilon=0.1, delta=0.1)
                .every(2.0).watch(ports=("p1",), directions=("tx",)).build())
        assert plan.window == 2.0
        assert plan.ports == ("p1",)
        assert plan.reduce.kind == "count-min"
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.window = 3.0

    def test_missing_stages_rejected(self):
        with pytest.raises(ValueError, match="map"):
            Query("q").reduce("sum").build()
        with pytest.raises(ValueError, match="reduce"):
            Query("q").map(key="port").build()

    def test_unknown_field_op_kind_rejected(self):
        with pytest.raises(ValueError, match="frame field"):
            Query("q").filter(("vlan", "==", 1))
        with pytest.raises(ValueError, match="filter op"):
            Query("q").filter(("port", "~=", "p1"))
        with pytest.raises(ValueError, match="reduce kind"):
            Query("q").map(key="port").reduce("bloom")
        with pytest.raises(ValueError, match="window"):
            Query("q").map(key="port").reduce("sum").every(0.0).build()

    def test_describe_mentions_every_stage(self):
        plan = (Query("load").filter(("wire_len", ">", 100))
                .map(key="port").reduce("sum").every(1.0).build())
        text = plan.describe()
        for token in ("load", "wire_len > 100", "key=port", "sum", "1.0s"):
            assert token in text

    def test_frame_view_derives_header_fields(self):
        head = bytes(range(6)) + bytes(range(6, 12)) + b"\x08\x00" + b"\x00" * 20
        view = FrameView(port="p1", direction="tx", wire_len=64, head=head)
        assert view.dst_mac == "000102030405"
        assert view.src_mac == "060708090a0b"
        assert view.ethertype == 0x0800


# ---------------------------------------------------------------------------
# Sketches


class TestCountMinSketch:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.text(min_size=1, max_size=8),
                              st.integers(min_value=0, max_value=1000)),
                    max_size=60),
           st.integers(min_value=0, max_value=3))
    def test_never_undercounts(self, updates, seed):
        sketch = CountMinSketch(epsilon=0.2, delta=0.2, seed=seed)
        truth = {}
        for key, weight in updates:
            sketch.update(key, weight)
            truth[key] = truth.get(key, 0) + weight
        for key, count in sorted(truth.items()):
            assert sketch.estimate(key) >= count

    def test_overcount_bounded_by_epsilon(self):
        """Across many keys, estimates exceeding the epsilon bound are
        rare (the count-min guarantee holds per key w.p. >= 1 - delta)."""
        epsilon, delta = 0.01, 0.05
        rng = derive_rng(99, "test/epsilon-bound")
        sketch = CountMinSketch(epsilon=epsilon, delta=delta, seed=5)
        truth = {}
        for _ in range(5000):
            key = f"k{int(rng.integers(0, 400))}"
            weight = int(rng.integers(1, 100))
            sketch.update(key, weight)
            truth[key] = truth.get(key, 0) + weight
        bound = epsilon * sketch.total_weight
        violations = sum(1 for key, count in sorted(truth.items())
                         if sketch.estimate(key) - count > bound)
        assert violations / len(truth) <= delta

    def test_dimensions_follow_epsilon_delta(self):
        sketch = CountMinSketch(epsilon=0.01, delta=0.05)
        assert sketch.width == 272        # ceil(e / 0.01)
        assert sketch.depth == 3          # ceil(ln(1 / 0.05))
        assert sketch.table_bytes == 272 * 3 * 4

    def test_same_seed_same_state(self):
        a = CountMinSketch(seed=7, label="telemetry/STAR/q")
        b = CountMinSketch(seed=7, label="telemetry/STAR/q")
        for i in range(200):
            a.update(f"key{i % 17}", i)
            b.update(f"key{i % 17}", i)
        assert a.state() == b.state()

    def test_different_labels_hash_differently(self):
        a = CountMinSketch(seed=7, label="telemetry/STAR/q")
        b = CountMinSketch(seed=7, label="telemetry/MICH/q")
        a.update("key", 5)
        b.update("key", 5)
        assert a.state() != b.state()

    def test_reset_zeroes_everything(self):
        sketch = CountMinSketch()
        sketch.update("x", 10)
        sketch.reset()
        assert sketch.total_weight == 0
        assert sketch.estimate("x") == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CountMinSketch(epsilon=0.0)
        with pytest.raises(ValueError):
            CountMinSketch(delta=1.0)
        with pytest.raises(ValueError):
            CountMinSketch().update("x", -1)


class TestHeavyHitters:
    def test_finds_the_heavy_keys(self):
        hh = HeavyHitters(k=2, epsilon=0.01, delta=0.01, seed=3)
        rng = derive_rng(3, "test/hh")
        for _ in range(2000):
            hh.update(f"mouse{int(rng.integers(0, 50))}", 1)
        for _ in range(500):
            hh.update("elephant-a", 100)
            hh.update("elephant-b", 60)
        top = hh.top()
        assert [key for key, _ in top] == ["elephant-a", "elephant-b"]
        assert top[0][1] >= 500 * 100            # never undercounts

    def test_top_order_is_deterministic(self):
        a, b = (HeavyHitters(k=4, seed=11) for _ in range(2))
        for i in range(300):
            a.update(f"k{i % 9}", 7)
            b.update(f"k{i % 9}", 7)
        assert a.top() == b.top()

    def test_report_bytes_counts_topk_only(self):
        hh = HeavyHitters(k=3, seed=0)
        for i in range(40):
            hh.update(f"k{i}", 1)
        assert hh.report_bytes == 3 * 12


# ---------------------------------------------------------------------------
# Compiled operators


def _view(port="p1", direction="tx", wire_len=100, head=b""):
    return FrameView(port=port, direction=direction, wire_len=wire_len,
                     head=head)


class TestCompiledQuery:
    def test_filter_map_reduce_sum(self):
        plan = (Query("q").filter(("direction", "==", "tx"))
                .map(key="port", value="wire_len").reduce("sum")
                .every(1.0).build())
        compiled = compile_plan(plan, "STAR", seed=1)
        compiled.observe(_view(port="p1", wire_len=100))
        compiled.observe(_view(port="p1", wire_len=50))
        compiled.observe(_view(port="p2", wire_len=25))
        compiled.observe(_view(port="p1", direction="rx"))   # filtered out
        report = compiled.flush(0.0, 1.0)
        assert report.frames == 3
        assert report.estimates == (("p1", 150), ("p2", 25))
        assert report.estimate("p9") == 0

    def test_frames_value_counts_frames_not_bytes(self):
        plan = (Query("q").map(key="port", value="frames").reduce("sum")
                .every(1.0).build())
        compiled = compile_plan(plan, "STAR", seed=1)
        for _ in range(5):
            compiled.observe(_view(wire_len=1500))
        assert compiled.flush(0.0, 1.0).estimates == (("p1", 5),)

    def test_empty_window_emits_no_report(self):
        plan = Query("q").map(key="port").reduce("sum").every(1.0).build()
        compiled = compile_plan(plan, "STAR", seed=1)
        assert compiled.flush(0.0, 1.0) is None

    def test_count_min_estimates_cover_watched_ports(self):
        plan = (Query("q").map(key="port").reduce("count-min")
                .every(1.0).watch(ports=("p1", "p2")).build())
        compiled = compile_plan(plan, "STAR", seed=1)
        compiled.observe(_view(port="p1", wire_len=100))
        report = compiled.flush(0.0, 1.0)
        keys = [key for key, _ in report.estimates]
        assert keys == ["p1", "p2"]
        assert report.estimate("p1") >= 100

    def test_flush_resets_for_next_window(self):
        plan = Query("q").map(key="port").reduce("count-min").every(1.0).build()
        compiled = compile_plan(plan, "STAR", seed=1)
        compiled.observe(_view(wire_len=100))
        first = compiled.flush(0.0, 1.0)
        compiled.observe(_view(wire_len=40))
        second = compiled.flush(1.0, 2.0)
        assert first.total_weight == 100
        assert second.total_weight == 40


class TestQueryRuntime:
    """The window clock + tap lifecycle against a real switch."""

    def _runtime(self, federation, reports, window=1.0):
        switch = federation.site("STAR").switch
        port_id = sorted(switch.ports)[0]
        plan = (Query(EGRESS_LOAD_QUERY).map(key="port", value="wire_len")
                .reduce("count-min").every(window)
                .watch(ports=(port_id,), directions=("tx",)).build())
        runtime = QueryRuntime(federation.sim, "STAR", seed=42,
                               on_report=reports.append)
        runtime.install(switch, [plan])
        return runtime, switch, port_id

    def _offer(self, switch, port_id, n=3, wire_len=200):
        for _ in range(n):
            switch.ports[port_id].link.tx.offer(
                Frame(wire_len=wire_len, head=b"\x00" * 14))

    def test_windows_tumble_on_the_sim_clock(self, federation):
        reports = []
        runtime, switch, port_id = self._runtime(federation, reports)
        sim = federation.sim
        runtime.arm(sim.now)
        self._offer(switch, port_id)
        sim.run(until=2.5)
        self._offer(switch, port_id, n=2)
        runtime.finalize(sim.now)
        # Window 1 carried 3 frames; windows 2-3 were empty (suppressed);
        # the partial final window carried 2.
        assert [r.frames for r in reports] == [3, 2]
        assert reports[0].window_end - reports[0].window_start == \
            pytest.approx(1.0)
        assert runtime.reports_emitted == 2
        assert runtime.report_bytes_total == \
            sum(r.report_bytes for r in reports)

    def test_disarmed_taps_ignore_traffic(self, federation):
        reports = []
        runtime, switch, port_id = self._runtime(federation, reports)
        self._offer(switch, port_id)               # before arm
        runtime.arm(federation.sim.now)
        runtime.finalize(federation.sim.now)       # zero-width: no flush
        self._offer(switch, port_id)               # after finalize
        federation.sim.run(until=2.0)
        assert reports == []

    def test_uninstall_removes_taps(self, federation):
        reports = []
        runtime, switch, port_id = self._runtime(federation, reports)
        runtime.arm(federation.sim.now)
        runtime.uninstall()
        self._offer(switch, port_id)
        federation.sim.run(until=2.0)
        assert reports == []

    def test_reports_identical_across_worlds(self, federation):
        """Same seed + same frames = byte-identical report stream, even
        in a freshly built world (the shard-parity property)."""
        from repro.testbed import FederationBuilder

        streams = []
        for fed in (federation,
                    FederationBuilder(seed=42).build(
                        site_names=["STAR", "MICH", "UTAH", "TACC"])):
            reports = []
            runtime, switch, port_id = self._runtime(fed, reports)
            runtime.arm(fed.sim.now)
            self._offer(switch, port_id)
            fed.sim.run(until=1.5)
            runtime.finalize(fed.sim.now)
            streams.append([json.dumps(r.to_event(), sort_keys=True)
                            for r in reports])
        assert streams[0] == streams[1]
        assert streams[0]


# ---------------------------------------------------------------------------
# In-band path


class TestShim:
    def test_encode_decode_roundtrip(self):
        shim = TelemetryShim(t=12.5, queue_depth_bytes=4096,
                             occupancy_milli=875, port_hash=0xBEEF)
        assert TelemetryShim.decode(shim.encode()) == shim

    def test_decode_rejects_garbage(self):
        assert TelemetryShim.decode(b"\x00" * SHIM_LEN) is None
        assert TelemetryShim.decode(b"short") is None

    def test_peel_restores_original_frame(self):
        stamper = IntStamper(stamp_every=1)
        original = Frame(wire_len=500, head=b"\xaa" * 32, created_at=3.0,
                         flow_id=9, slice_id="s", site="STAR")
        stamped = stamper.stamp(original, "p1", now=4.0,
                                queue_depth_bytes=1000,
                                queue_limit_bytes=10_000)
        assert stamped.wire_len == 500 + SHIM_LEN
        clean, shim = peel(stamped)
        assert shim is not None
        assert (clean.wire_len, clean.head) == (500, b"\xaa" * 32)
        assert (clean.flow_id, clean.site) == (9, "STAR")
        assert shim.t == pytest.approx(4.0)
        assert shim.queue_depth_bytes == 1000
        assert shim.occupancy_milli == 150     # (1000 + 500) / 10000

    def test_peel_passes_unstamped_frames_through(self):
        frame = Frame(wire_len=500, head=b"\xaa" * 32)
        clean, shim = peel(frame)
        assert shim is None
        assert clean is frame


class TestIntStamper:
    def test_stamps_first_and_every_kth(self):
        stamper = IntStamper(stamp_every=4)
        stamped = [stamper.stamp(Frame(wire_len=100, head=b"\x00" * 14),
                                 "p1", 0.0, 0, 1000).wire_len > 100
                   for _ in range(9)]
        assert stamped == [True, False, False, False,
                           True, False, False, False, True]
        assert stamper.frames_stamped == 3
        assert stamper.frames_seen == 9

    def test_counters_are_per_port(self):
        stamper = IntStamper(stamp_every=2)
        a = stamper.stamp(Frame(wire_len=100, head=b""), "p1", 0.0, 0, 1000)
        b = stamper.stamp(Frame(wire_len=100, head=b""), "p2", 0.0, 0, 1000)
        assert a.wire_len > 100 and b.wire_len > 100

    def test_occupancy_saturates_at_1000(self):
        stamper = IntStamper(stamp_every=1)
        stamped = stamper.stamp(Frame(wire_len=900, head=b""), "p1", 0.0,
                                queue_depth_bytes=800,
                                queue_limit_bytes=1000)
        _, shim = peel(stamped)
        assert shim.occupancy_milli == 1000

    def _mirror_world(self, stamping, tmp_path, name):
        """A mirrored flow captured with/without in-band stamping."""
        import numpy as np

        from repro.capture.session import CaptureSession
        from repro.packets.pcap import PcapReader
        from repro.testbed import FederationBuilder
        from repro.traffic.endpoints import EndpointRegistry
        from repro.traffic.flows import STANDARD_APPS, Flow

        federation = FederationBuilder(seed=42).build(
            site_names=["STAR", "MICH"])
        registry = EndpointRegistry(federation)
        a = registry.create("STAR")
        b = registry.create("STAR")
        cap = registry.create("STAR")
        switch = federation.site("STAR").switch
        if stamping:
            switch.int_stamper = IntStamper(stamp_every=1)
        switch.create_mirror(a.nic_port.switch_port_id,
                             cap.nic_port.switch_port_id)
        path = tmp_path / f"{name}.pcap"
        session = CaptureSession(federation.sim, cap.nic_port, path,
                                 snaplen=128, int_strip=stamping)
        session.start()
        Flow(sim=federation.sim, flow_id=1, src=a, dst=b,
             app=STANDARD_APPS["iperf-tcp"], total_bytes=100_000,
             rng=np.random.default_rng(0)).start()
        federation.sim.run()
        stats = session.stop()
        return stats, session, PcapReader(path).read_all()

    def test_mirror_clones_get_stamped_and_capture_peels(self, tmp_path):
        """End-to-end: stamped clones reach the capture host, the peel
        collects every shim, and the pcap bytes match an unstamped run
        exactly (timestamps aside: the shim shifts serialization by
        nanoseconds, but never the captured bytes)."""
        stats_on, session, stamped = self._mirror_world(
            True, tmp_path, "stamped")
        stats_off, _, clean = self._mirror_world(False, tmp_path, "clean")
        assert stats_on.frames_seen > 0
        assert len(session.int_stamps) == stats_on.frames_seen
        assert session.int_stamps.telemetry_bytes == \
            stats_on.frames_seen * SHIM_LEN
        assert stats_on.frames_seen == stats_off.frames_seen
        assert stats_on.bytes_on_wire == stats_off.bytes_on_wire
        assert [(r.orig_len, r.data) for r in stamped] == \
            [(r.orig_len, r.data) for r in clean]


# ---------------------------------------------------------------------------
# Detectors


def _report(start, end, est, query=EGRESS_LOAD_QUERY, report_bytes=676):
    return SketchReport(site="STAR", query=query, kind="count-min",
                        window_start=start, window_end=end, frames=10,
                        total_weight=est, report_bytes=report_bytes,
                        estimates=(("pd", est),))


class TestSketchDetector:
    def test_flags_over_rate_window_with_latency(self):
        detector = SketchCongestionDetector()
        # 10 Mbit in a 1 s window against a 1 Mbps destination.
        reading = detector.check(
            [_report(0.0, 1.0, 125_000), _report(1.0, 2.0, 1_250_000)],
            "pd", dest_rate_bps=1e6, start=0.0, end=5.0)
        assert reading.overloaded is True
        assert reading.latency == pytest.approx(2.0)
        assert reading.telemetry_bytes == 2 * 676

    def test_quiet_windows_say_no(self):
        reading = SketchCongestionDetector().check(
            [_report(0.0, 1.0, 1000)], "pd", 1e6, 0.0, 5.0)
        assert reading.overloaded is False
        assert reading.latency is None

    def test_no_reports_is_unanswerable(self):
        reading = SketchCongestionDetector().check([], "pd", 1e6, 0.0, 5.0)
        assert reading.overloaded is None

    def test_other_queries_charged_but_not_consulted(self):
        reading = SketchCongestionDetector().check(
            [_report(0.0, 1.0, 9_999_999, query="top-talkers",
                     report_bytes=52)],
            "pd", 1e6, 0.0, 5.0)
        assert reading.overloaded is None          # nothing consulted
        assert reading.telemetry_bytes == 52       # but the bytes shipped

    def test_out_of_window_reports_ignored(self):
        reading = SketchCongestionDetector().check(
            [_report(10.0, 11.0, 1_250_000)], "pd", 1e6, 0.0, 5.0)
        assert reading.overloaded is None
        assert reading.telemetry_bytes == 0


class TestInbandDetector:
    def _log(self, *occupancies, t0=1.0):
        log = StampLog()
        for i, occ in enumerate(occupancies):
            log.add(t0 + i, TelemetryShim(t=t0 + i, queue_depth_bytes=0,
                                          occupancy_milli=occ, port_hash=0))
        return log

    def test_first_crossing_sets_latency(self):
        reading = InbandCongestionDetector(occupancy_threshold=0.9).check(
            self._log(100, 400, 950, 990), frames_seen=50,
            start=0.0, end=10.0)
        assert reading.overloaded is True
        assert reading.latency == pytest.approx(3.0)   # stamp at t0+2
        assert reading.telemetry_bytes == 4 * SHIM_LEN

    def test_low_occupancy_is_confident_no(self):
        reading = InbandCongestionDetector().check(
            self._log(100, 200), frames_seen=50, start=0.0, end=10.0)
        assert reading.overloaded is False

    def test_no_signal_is_unanswerable(self):
        detector = InbandCongestionDetector()
        assert detector.check(self._log(), 50, 0.0, 10.0).overloaded is None
        assert detector.check(self._log(999), 0, 0.0, 10.0).overloaded is None


class TestSnmpReading:
    def test_wraps_verdict(self):
        reading = snmp_reading(True, 12.0, 1024)
        assert (reading.name, reading.overloaded, reading.latency,
                reading.telemetry_bytes) == ("snmp", True, 12.0, 1024)

    def test_latency_nulled_when_not_overloaded(self):
        assert snmp_reading(False, 12.0, 1024).latency is None
        assert snmp_reading(None, 12.0, 0).overloaded is None


# ---------------------------------------------------------------------------
# Campaign-level determinism (the acceptance bar: telemetry-enabled runs
# are byte-identical under a fixed seed, including sharded execution)


TELEMETRY_MANIFEST = dataclasses.replace(
    default_manifest(7), telemetry_queries=True, telemetry_window=0.5)


def _run_campaign(run_dir, manifest, workers=1):
    from repro.core.campaign import CampaignRunner
    from repro.core.checkpoint import sha256_file

    summary = CampaignRunner(run_dir, manifest=manifest,
                             shard_workers=workers).run()
    return summary, sha256_file(run_dir / "journal.jsonl")


class TestTelemetryCampaignDeterminism:
    def test_two_runs_byte_identical(self, tmp_path):
        _, sha_a = _run_campaign(tmp_path / "a", TELEMETRY_MANIFEST)
        summary, sha_b = _run_campaign(tmp_path / "b", TELEMETRY_MANIFEST)
        assert summary.audit_ok
        assert sha_a == sha_b

    def test_sharded_workers_byte_identical(self, tmp_path):
        manifest = dataclasses.replace(TELEMETRY_MANIFEST, sharded=True)
        _, sha_one = _run_campaign(tmp_path / "w1", manifest, workers=1)
        _, sha_two = _run_campaign(tmp_path / "w2", manifest, workers=2)
        assert sha_one == sha_two

    def test_journal_carries_telemetry_evidence(self, tmp_path):
        from repro.obs import RunJournal
        from repro.obs.audit import audit_journal

        _run_campaign(tmp_path / "run", TELEMETRY_MANIFEST)
        journal = RunJournal.read(tmp_path / "run" / "journal.jsonl")
        assert list(journal.of_kind("telemetry-report"))
        ledgers = list(journal.of_kind("ledger"))
        assert ledgers
        for event in ledgers:
            detectors = event.data.get("detectors", {})
            assert sorted(detectors) == ["inband", "sketch", "snmp"]
        result = audit_journal(journal)
        assert result.ok
        assert sorted(result.detector_scorecards) == \
            ["inband", "sketch", "snmp"]
        # All three detectors were judged on the same rows.
        samples = {card.samples
                   for card in result.detector_scorecards.values()}
        assert len(samples) == 1

    def test_telemetry_off_journal_has_no_telemetry_events(self, tmp_path):
        from repro.obs import RunJournal

        _run_campaign(tmp_path / "off", default_manifest(7))
        journal = RunJournal.read(tmp_path / "off" / "journal.jsonl")
        assert not list(journal.of_kind("telemetry-report"))
        assert not list(journal.of_kind("detector-scorecard"))
        for event in journal.of_kind("ledger"):
            assert "detectors" not in event.data


# ---------------------------------------------------------------------------
# CLI: `repro audit --detectors`


class TestAuditDetectorsCLI:
    @pytest.fixture(scope="class")
    def telemetry_journal(self, tmp_path_factory):
        run_dir = tmp_path_factory.mktemp("cli") / "run"
        _run_campaign(run_dir, TELEMETRY_MANIFEST)
        return run_dir / "journal.jsonl"

    def test_detectors_view(self, telemetry_journal, capsys):
        from repro.cli import main

        assert main(["audit", str(telemetry_journal), "--detectors"]) == 0
        out = capsys.readouterr().out
        assert "Detector comparison" in out
        for name in ("snmp", "sketch", "inband"):
            assert name in out

    def test_json_parity(self, telemetry_journal, capsys):
        from repro.cli import main

        assert main(["audit", str(telemetry_journal), "--detectors",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload) == ["inband", "sketch", "snmp"]
        for card in payload.values():
            assert {"tp", "fp", "fn", "tn", "latency_to_detect",
                    "telemetry_bytes"} <= set(card)

    def test_csv_parity(self, telemetry_journal, tmp_path, capsys):
        from repro.cli import main

        csv_path = tmp_path / "detectors.csv"
        assert main(["audit", str(telemetry_journal), "--detectors",
                     "--csv", str(csv_path)]) == 0
        capsys.readouterr()
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("detector,")
        assert "telemetry_bytes" in header

    def test_telemetry_off_journal_errors(self, tmp_path, capsys):
        from repro.cli import main

        run_dir = tmp_path / "off"
        _run_campaign(run_dir, default_manifest(7))
        code = main(["audit", str(run_dir / "journal.jsonl"), "--detectors"])
        assert code == 2
        assert "no detector readings" in capsys.readouterr().err
