"""Tests for iterative back-off acquisition."""

import pytest

from repro.core.backoff import acquire_with_backoff, patchwork_request
from repro.core.logs import InstanceLog
from repro.testbed import FederationBuilder, TestbedAPI
from repro.testbed.slice_model import NodeRequest, SliceRequest


@pytest.fixture()
def api():
    federation = FederationBuilder(seed=42).build(site_names=["STAR", "MICH"])
    return TestbedAPI(federation)


def log():
    return InstanceLog("STAR", "test")


def drain_nics(api, site, leave):
    """Consume dedicated NICs until only ``leave`` remain."""
    free = api.available_resources(site).dedicated_nics
    take = int(free) - leave
    if take <= 0:
        return
    api.create_slice(SliceRequest(site=site, nodes=[
        NodeRequest(name=f"u{i}") for i in range(take)], name=f"drain-{site}"))


class TestPatchworkRequest:
    def test_default_node_shape(self):
        request = patchwork_request("STAR", 2)
        node = request.nodes[0]
        assert (node.cores, node.ram_gb, node.disk_gb, node.dedicated_nics) == \
            (2, 8.0, 100.0, 1)

    def test_node_count(self):
        assert len(patchwork_request("STAR", 3).nodes) == 3


class TestAcquisition:
    def test_full_acquisition(self, api):
        result = acquire_with_backoff(api, "STAR", 2, log())
        assert result.acquired
        assert result.granted_nodes == 2
        assert result.backoffs == 0
        assert not result.degraded

    def test_backoff_to_smaller_request(self, api):
        drain_nics(api, "STAR", leave=1)
        result = acquire_with_backoff(api, "STAR", 3, log(), max_backoffs=4)
        assert result.acquired
        assert result.granted_nodes == 1
        assert result.backoffs == 2
        assert result.degraded

    def test_failure_when_nothing_left(self, api):
        drain_nics(api, "STAR", leave=0)
        result = acquire_with_backoff(api, "STAR", 2, log())
        assert not result.acquired
        assert "dedicated_nics" in result.failure_reason

    def test_max_backoffs_respected(self, api):
        drain_nics(api, "STAR", leave=1)
        result = acquire_with_backoff(api, "STAR", 4, log(), max_backoffs=1)
        assert not result.acquired

    def test_transient_retry_then_success(self, api):
        # Outage covering only the first attempt window.
        api.federation.faults.add_outage(api.now, api.now + 10.0)
        api.wait(0.0)
        result = acquire_with_backoff(api, "STAR", 1, log(),
                                      transient_retries=3)
        # The first create fails (charging BASE latency pushes time past
        # the outage), the retry succeeds.
        assert result.acquired
        assert result.transient_failures >= 1

    def test_persistent_outage_fails(self, api):
        api.federation.faults.add_outage(api.now, api.now + 1e6)
        result = acquire_with_backoff(api, "STAR", 1, log(),
                                      transient_retries=2)
        assert not result.acquired
        assert result.failure_reason == "transient backend error"
        assert result.transient_failures == 3

    def test_transient_retries_wait_sim_time(self, api):
        import numpy as np
        api.federation.faults.add_outage(api.now, api.now + 1e6)
        the_log = log()
        t0 = api.now
        acquire_with_backoff(api, "STAR", 1, the_log, transient_retries=2,
                             retry_delay=8.0, rng=np.random.default_rng(3))
        waits = [e for e in the_log
                 if e.kind == "acquire" and "waiting" in e.message]
        assert len(waits) == 2   # one wait per retry, none after giving up
        delays = [e.data["delay"] for e in waits]
        assert all(4.0 <= d < 12.0 for d in delays)   # jitter in [0.5, 1.5)x
        assert len(set(delays)) == len(delays)
        assert api.now >= t0 + sum(delays)

    def test_zero_retry_delay_keeps_legacy_timing(self, api):
        api.federation.faults.add_outage(api.now, api.now + 1e6)
        the_log = log()
        acquire_with_backoff(api, "STAR", 1, the_log, transient_retries=1,
                             retry_delay=0.0)
        assert not any("waiting" in e.message for e in the_log)

    def test_acquisition_logged(self, api):
        the_log = log()
        acquire_with_backoff(api, "STAR", 1, the_log)
        assert any(e.kind == "acquire" for e in the_log)

    def test_backoff_releases_nothing_on_failure(self, api):
        before = api.available_resources("STAR")
        drain = before.dedicated_nics
        drain_nics(api, "STAR", leave=0)
        during = api.available_resources("STAR")
        acquire_with_backoff(api, "STAR", 2, log())
        after = api.available_resources("STAR")
        assert after.dedicated_nics == during.dedicated_nics == 0
        assert after.cores == during.cores
