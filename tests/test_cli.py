"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["study"]).command == "study"
        assert parser.parse_args(["profile", "--sites", "A", "B"]).sites == ["A", "B"]
        assert parser.parse_args(["campaign", "--occasions", "3"]).occasions == 3
        assert parser.parse_args(["analyze", "x.pcap"]).command == "analyze"
        args = parser.parse_args(["plan", "100Gbps", "1514"])
        assert args.rate == "100Gbps" and args.frame_size == 1514

    def test_obs_commands_parse(self):
        parser = build_parser()
        args = parser.parse_args(["obs", "dump", "j.jsonl", "--kind", "fault"])
        assert args.obs_command == "dump" and args.kind == "fault"
        args = parser.parse_args(["obs", "tail", "j.jsonl", "-n", "5"])
        assert args.lines == 5
        args = parser.parse_args(["obs", "diff", "a.jsonl", "b.jsonl"])
        assert args.obs_command == "diff"
        args = parser.parse_args(["obs", "export", "j.jsonl",
                                  "--format", "jsonl"])
        assert args.format == "jsonl"
        args = parser.parse_args(["obs", "diff", "a.jsonl", "b.jsonl", "-q"])
        assert args.quiet

    def test_audit_command_parses(self):
        parser = build_parser()
        args = parser.parse_args(["audit", "j.jsonl"])
        assert args.command == "audit"
        assert args.csv is None and not args.json

    def test_json_flags_parse(self):
        parser = build_parser()
        assert parser.parse_args(["profile", "--json"]).json
        assert parser.parse_args(["analyze", "x.pcap", "--json"]).json


class TestPlan:
    def test_tcpdump_recommended_for_light_load(self, capsys):
        assert main(["plan", "5Gbps", "1514"]) == 0
        assert "tcpdump" in capsys.readouterr().out

    def test_dpdk_recommended_for_100g(self, capsys):
        assert main(["plan", "100Gbps", "1514"]) == 0
        assert "DPDK" in capsys.readouterr().out

    def test_fpga_recommended_for_small_frames(self, capsys):
        assert main(["plan", "100Gbps", "128"]) == 0
        assert "FPGA" in capsys.readouterr().out


class TestStudy:
    def test_study_prints_figures(self, capsys):
        assert main(["study", "--weeks", "8"]) == 0
        out = capsys.readouterr().out
        assert "Distribution of ports" in out
        assert "Slice spread" in out
        assert "Duration of slices" in out
        assert "Simultaneous slices" in out
        assert "peak network week" in out


class TestAnalyze:
    def test_analyze_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent/x.pcap"]) == 2
        assert "no such pcap" in capsys.readouterr().err

    def test_analyze_real_pcaps(self, profiled_bundle_and_pipeline, tmp_path,
                                capsys):
        bundle, _pipeline, _report = profiled_bundle_and_pipeline
        paths = [str(p) for p in bundle.pcap_paths[:4]]
        assert main(["analyze", *paths, "--out", str(tmp_path), "--charts"]) == 0
        out = capsys.readouterr().out
        assert "Occurrence of protocol headers" in out
        assert (tmp_path / "csv").exists()
        assert list((tmp_path / "charts").glob("*.svg"))


class TestAnalyzeJson:
    def test_analyze_json_output(self, profiled_bundle_and_pipeline, tmp_path,
                                 capsys):
        bundle, _pipeline, _report = profiled_bundle_and_pipeline
        paths = [str(p) for p in bundle.pcap_paths[:2]]
        assert main(["analyze", *paths, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_frames"] > 0
        assert payload["stats"]["pcaps"] == 2
        assert "frame_sizes_overall" in payload["tables"]
        table = payload["tables"]["frame_sizes_overall"]
        assert set(table) == {"title", "columns", "rows"}


class TestProfile:
    def test_profile_end_to_end(self, tmp_path, capsys):
        code = main([
            "profile", "--sites", "STAR", "MICH",
            "--out", str(tmp_path / "out"), "--scale", "0.02",
            "--sample-duration", "2", "--sample-interval", "10",
            "--samples", "1", "--cycles", "1", "--instances", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "STAR:" in out and "MICH:" in out
        assert (tmp_path / "out" / "csv").exists()
        assert (tmp_path / "out" / "logs").exists()
        assert (tmp_path / "out" / "journal.jsonl").exists()
        assert (tmp_path / "out" / "metrics.prom").exists()

    def test_profile_json_mode(self, tmp_path, capsys):
        code = main([
            "profile", "--sites", "STAR", "MICH",
            "--out", str(tmp_path / "out"), "--scale", "0.02",
            "--sample-duration", "2", "--sample-interval", "10",
            "--samples", "1", "--cycles", "1", "--instances", "1",
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert {r["site"] for r in payload["runs"]} == {"STAR", "MICH"}
        assert all(r["outcome"] in ("success", "degraded", "failed",
                                    "incomplete") for r in payload["runs"])
        assert "report" in payload and "tables" not in payload["report"]
        assert payload["journal"].endswith("journal.jsonl")


class TestObsCommands:
    @pytest.fixture()
    def journal_path(self, tmp_path):
        from repro.obs import Observability

        obs = Observability.create()
        obs.registry.counter("digest.frames").inc(42)
        obs.journal.emit("fault", t=1.0, site="STAR", reason="incident")
        obs.journal.emit("log", t=2.0, message="hello")
        obs.snapshot_to_journal()
        return obs.journal.write(tmp_path / "journal.jsonl")

    def test_dump(self, journal_path, capsys):
        assert main(["obs", "dump", str(journal_path)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[0])["kind"] == "fault"

    def test_dump_kind_filter(self, journal_path, capsys):
        assert main(["obs", "dump", str(journal_path), "--kind", "log"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["data"]["message"] == "hello"

    def test_tail(self, journal_path, capsys):
        assert main(["obs", "tail", str(journal_path), "-n", "1"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "metrics"

    def test_diff_identical(self, journal_path, capsys):
        assert main(["obs", "diff", str(journal_path),
                     str(journal_path)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_different(self, journal_path, tmp_path, capsys):
        from repro.obs import RunJournal

        other = RunJournal()
        other.emit("fault", t=9.0, site="MICH")
        other_path = other.write(tmp_path / "other.jsonl")
        assert main(["obs", "diff", str(journal_path),
                     str(other_path)]) == 1
        assert "event 0" in capsys.readouterr().out

    def test_diff_quiet_same_exit_codes_no_output(self, journal_path,
                                                  tmp_path, capsys):
        from repro.obs import RunJournal

        assert main(["obs", "diff", "-q", str(journal_path),
                     str(journal_path)]) == 0
        assert capsys.readouterr().out == ""
        other = RunJournal()
        other.emit("fault", t=9.0, site="MICH")
        other_path = other.write(tmp_path / "other.jsonl")
        assert main(["obs", "diff", "-q", str(journal_path),
                     str(other_path)]) == 1
        assert capsys.readouterr().out == ""

    def test_export_prometheus(self, journal_path, capsys):
        assert main(["obs", "export", str(journal_path)]) == 0
        out = capsys.readouterr().out
        assert "digest_frames 42" in out

    def test_export_jsonl(self, journal_path, capsys):
        assert main(["obs", "export", str(journal_path),
                     "--format", "jsonl"]) == 0
        payload = json.loads(capsys.readouterr().out.splitlines()[0])
        assert payload == {"kind": "counter", "name": "digest.frames",
                           "value": 42}

    def test_missing_journal(self, capsys):
        assert main(["obs", "dump", "/nonexistent/j.jsonl"]) == 2
        assert "no such journal" in capsys.readouterr().err

    def test_export_without_snapshot(self, tmp_path, capsys):
        from repro.obs import RunJournal

        journal = RunJournal()
        journal.emit("fault", t=1.0)
        path = journal.write(tmp_path / "bare.jsonl")
        assert main(["obs", "export", str(path)]) == 2
        assert "no metrics snapshot" in capsys.readouterr().err


class TestCampaign:
    def test_campaign_small(self, tmp_path, capsys):
        code = main(["campaign", "--sites", "3", "--occasions", "2",
                     "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "success rate" in out


DURABLE_ARGS = [
    "profile", "--durable", "--sites", "STAR", "MICH",
    "--scale", "0.005", "--sample-duration", "2", "--sample-interval", "10",
    "--samples", "1", "--cycles", "1", "--instances", "1",
    "--occasions", "1", "--traffic-span", "120", "--seed", "9",
]


class TestDurableProfile:
    def test_durable_then_resume_noop(self, tmp_path, capsys):
        out = tmp_path / "run"
        assert main(DURABLE_ARGS + ["--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "ran: occasions [0]" in text
        assert "audit ok" in text
        assert (out / "campaign.wal").exists()
        assert (out / "journal.jsonl").exists()
        assert main(["profile", "--resume", str(out)]) == 0
        assert "already complete" in capsys.readouterr().out

    def test_resume_rejects_non_campaign_dir(self, tmp_path, capsys):
        assert main(["profile", "--resume", str(tmp_path)]) == 2
        assert "not a campaign run directory" in capsys.readouterr().err

    def test_resume_wal_without_manifest_is_friendly(self, tmp_path, capsys):
        """The 'resumable-no-manifest' state `repro runs describe`
        reports must fail with a message and exit 2, not a traceback."""
        (tmp_path / "campaign.wal").write_bytes(b"")
        assert main(["profile", "--resume", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "cannot resume" in err and "manifest" in err

    def test_runs_list_and_describe(self, tmp_path, capsys):
        out = tmp_path / "run"
        main(DURABLE_ARGS + ["--out", str(out)])
        capsys.readouterr()
        assert main(["runs", "list", str(tmp_path)]) == 0
        listing = capsys.readouterr().out
        assert "complete" in listing and "1/1 occasions committed" in listing
        assert main(["runs", "describe", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["state"] == "complete"

    def test_runs_list_empty(self, tmp_path, capsys):
        assert main(["runs", "list", str(tmp_path)]) == 0
        assert "no campaign run directories" in capsys.readouterr().out


class TestChaosCommand:
    def test_chaos_smoke_json(self, tmp_path, capsys):
        code = main(["chaos", "--trials", "2", "--seed", "5",
                     "--out", str(tmp_path / "chaos"), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] and payload["trials"] == 2
        assert (tmp_path / "chaos" / "chaos-report.json").exists()
