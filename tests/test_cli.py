"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["study"]).command == "study"
        assert parser.parse_args(["profile", "--sites", "A", "B"]).sites == ["A", "B"]
        assert parser.parse_args(["campaign", "--occasions", "3"]).occasions == 3
        assert parser.parse_args(["analyze", "x.pcap"]).command == "analyze"
        args = parser.parse_args(["plan", "100Gbps", "1514"])
        assert args.rate == "100Gbps" and args.frame_size == 1514


class TestPlan:
    def test_tcpdump_recommended_for_light_load(self, capsys):
        assert main(["plan", "5Gbps", "1514"]) == 0
        assert "tcpdump" in capsys.readouterr().out

    def test_dpdk_recommended_for_100g(self, capsys):
        assert main(["plan", "100Gbps", "1514"]) == 0
        assert "DPDK" in capsys.readouterr().out

    def test_fpga_recommended_for_small_frames(self, capsys):
        assert main(["plan", "100Gbps", "128"]) == 0
        assert "FPGA" in capsys.readouterr().out


class TestStudy:
    def test_study_prints_figures(self, capsys):
        assert main(["study", "--weeks", "8"]) == 0
        out = capsys.readouterr().out
        assert "Distribution of ports" in out
        assert "Slice spread" in out
        assert "Duration of slices" in out
        assert "Simultaneous slices" in out
        assert "peak network week" in out


class TestAnalyze:
    def test_analyze_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent/x.pcap"]) == 2
        assert "no such pcap" in capsys.readouterr().err

    def test_analyze_real_pcaps(self, profiled_bundle_and_pipeline, tmp_path,
                                capsys):
        bundle, _pipeline, _report = profiled_bundle_and_pipeline
        paths = [str(p) for p in bundle.pcap_paths[:4]]
        assert main(["analyze", *paths, "--out", str(tmp_path), "--charts"]) == 0
        out = capsys.readouterr().out
        assert "Occurrence of protocol headers" in out
        assert (tmp_path / "csv").exists()
        assert list((tmp_path / "charts").glob("*.svg"))


class TestProfile:
    def test_profile_end_to_end(self, tmp_path, capsys):
        code = main([
            "profile", "--sites", "STAR", "MICH",
            "--out", str(tmp_path / "out"), "--scale", "0.02",
            "--sample-duration", "2", "--sample-interval", "10",
            "--samples", "1", "--cycles", "1", "--instances", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "STAR:" in out and "MICH:" in out
        assert (tmp_path / "out" / "csv").exists()
        assert (tmp_path / "out" / "logs").exists()


class TestCampaign:
    def test_campaign_small(self, tmp_path, capsys):
        code = main(["campaign", "--sites", "3", "--occasions", "2",
                     "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "success rate" in out
