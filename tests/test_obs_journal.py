"""Tests for the run journal (repro.obs.journal)."""

import enum
from pathlib import Path

import pytest

from repro.netsim.engine import Simulator
from repro.obs import JournalEvent, RunJournal, diff_journals, jsonable
from repro.obs.clock import SimClock, WallClock


class Color(enum.Enum):
    RED = "red"


class TestJsonable:
    def test_scalars_pass_through(self):
        assert jsonable(1) == 1
        assert jsonable("x") == "x"
        assert jsonable(None) is None

    def test_enum_becomes_value(self):
        assert jsonable(Color.RED) == "red"

    def test_path_becomes_string(self):
        assert jsonable(Path("/a/b")) == "/a/b"

    def test_set_becomes_sorted_list(self):
        assert jsonable({"b", "a"}) == ["a", "b"]

    def test_nested(self):
        assert jsonable({"k": (Color.RED, {1})}) == {"k": ["red", [1]]}

    def test_fallback_to_str(self):
        class Weird:
            def __repr__(self):
                return "weird"
        assert jsonable(Weird()) == "weird"


class TestEmit:
    def test_seq_assignment_and_payload(self):
        journal = RunJournal()
        a = journal.emit("fault", t=1.5, site="STAR")
        b = journal.emit("fault", t=2.5, site="MICH")
        assert (a.seq, b.seq) == (0, 1)
        assert a.data == {"site": "STAR"}
        assert len(journal) == 2

    def test_sim_clock_stamps_deterministic_journal(self):
        sim = Simulator()
        sim.schedule_at(7.0, lambda: None)
        sim.run()
        journal = RunJournal(clock=SimClock(sim))
        event = journal.emit("tick")
        assert event.t == 7.0

    def test_wall_clock_dropped_from_deterministic_journal(self):
        journal = RunJournal(clock=WallClock(), deterministic=True)
        assert journal.emit("tick").t is None

    def test_wall_clock_kept_when_not_deterministic(self):
        journal = RunJournal(clock=WallClock(), deterministic=False)
        assert journal.emit("tick").t is not None

    def test_volatile_dropped_when_deterministic(self):
        det = RunJournal(deterministic=True)
        event = det.emit("pipeline", pcaps=3, volatile={"seconds": 0.12})
        assert event.data == {"pcaps": 3}
        loose = RunJournal(deterministic=False)
        event = loose.emit("pipeline", pcaps=3, volatile={"seconds": 0.12})
        assert event.data == {"pcaps": 3, "seconds": 0.12}

    def test_disabled_journal_is_noop(self):
        journal = RunJournal(enabled=False)
        assert journal.emit("tick") is None
        assert len(journal) == 0


class TestQueriesAndSerialization:
    def make(self):
        journal = RunJournal()
        journal.emit("fault", t=1.0, site="STAR")
        journal.emit("log", t=2.0, message="hi there")
        journal.emit("fault", t=3.0, site="MICH")
        return journal

    def test_of_kind_and_kinds(self):
        journal = self.make()
        assert len(journal.of_kind("fault")) == 2
        assert journal.kinds() == {"fault": 2, "log": 1}

    def test_jsonl_is_canonical(self):
        line = self.make().to_jsonl().splitlines()[0]
        # Sorted keys, compact separators: byte-stable serialization.
        assert line == '{"data":{"site":"STAR"},"kind":"fault","seq":0,"t":1.0}'

    def test_write_read_round_trip(self, tmp_path):
        journal = self.make()
        path = journal.write(tmp_path / "deep" / "journal.jsonl")
        loaded = RunJournal.read(path)
        assert loaded.to_jsonl() == journal.to_jsonl()
        assert [e.kind for e in loaded] == ["fault", "log", "fault"]

    def test_event_json_round_trip(self):
        event = JournalEvent(seq=4, kind="x", t=None, data={"a": 1})
        assert JournalEvent.from_json(event.to_json()) == event


class TestTornTailRecovery:
    """A crash mid-write may tear only the final line; readers drop it
    and remember it, and mid-file damage is never skipped."""

    def torn_file(self, tmp_path, chop=7):
        journal = RunJournal()
        journal.emit("tick", t=1.0, n=1)
        journal.emit("tick", t=2.0, n=2)
        path = journal.write(tmp_path / "journal.jsonl")
        raw = path.read_bytes()
        path.write_bytes(raw[:-chop])  # tear the final line mid-byte
        return path

    def test_torn_tail_dropped_and_remembered(self, tmp_path):
        path = self.torn_file(tmp_path)
        loaded = RunJournal.read(path)
        assert [e.data["n"] for e in loaded] == [1]
        assert loaded.torn_tail is not None

    def test_strict_read_refuses_torn_tail(self, tmp_path):
        path = self.torn_file(tmp_path)
        with pytest.raises(ValueError):
            RunJournal.read(path, strict=True)

    def test_unterminated_but_parseable_final_line_untrusted(self, tmp_path):
        # The write got every byte out except the newline: the line
        # parses, but it was never committed, so it is still dropped.
        path = self.torn_file(tmp_path, chop=1)
        loaded = RunJournal.read(path)
        assert [e.data["n"] for e in loaded] == [1]
        assert loaded.torn_tail is not None

    def test_mid_file_damage_is_fatal(self, tmp_path):
        journal = RunJournal()
        journal.emit("tick", t=1.0, n=1)
        journal.emit("tick", t=2.0, n=2)
        path = journal.write(tmp_path / "journal.jsonl")
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-5]  # damage a NON-final line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            RunJournal.read(path)

    def test_clean_read_has_no_torn_tail(self, tmp_path):
        journal = RunJournal()
        journal.emit("tick", t=1.0)
        path = journal.write(tmp_path / "journal.jsonl")
        assert RunJournal.read(path).torn_tail is None


class TestSegmentRotation:
    """Per-occasion segments rebased with reseq() concatenate into one
    journal whose sequence numbers are gapless."""

    def test_reseq_rebases_and_concatenation_is_gapless(self, tmp_path):
        first = RunJournal()
        first.emit("tick", t=1.0)
        first.emit("tick", t=2.0)
        second = RunJournal()
        second.reseq(first.next_seq)
        second.emit("tick", t=3.0)
        combined = first.to_jsonl() + second.to_jsonl()
        path = tmp_path / "journal.jsonl"
        path.write_text(combined)
        loaded = RunJournal.read(path)
        assert [e.seq for e in loaded] == [0, 1, 2]

    def test_reseq_renumbers_populated_journal(self):
        """A populated journal rebases contiguously, order untouched."""
        journal = RunJournal()
        journal.emit("tick", t=1.0, n=1)
        journal.emit("tock", t=2.0, n=2)
        journal.reseq(10)
        assert [e.seq for e in journal] == [10, 11]
        assert [e.kind for e in journal] == ["tick", "tock"]
        assert journal.next_seq == 12
        assert journal.emit("tick", t=3.0).seq == 12

    def test_start_seq_constructor(self):
        journal = RunJournal(start_seq=5)
        assert journal.emit("tick", t=1.0).seq == 5
        assert journal.next_seq == 6


class TestMerge:
    """RunJournal.merge: deterministic (sim_time, site, seq) interleave
    of per-site shard segments -- the sharded campaign's core step."""

    @staticmethod
    def _segment(site, stamps):
        journal = RunJournal()
        for t in stamps:
            journal.emit("tick", t=t, site=site)
        return journal

    def test_orders_by_time_then_site(self):
        a = self._segment("STAR", [1.0, 3.0])
        b = self._segment("MICH", [2.0, 3.0])
        merged = RunJournal.merge([("STAR", a), ("MICH", b)])
        order = [(e.t, e.data["site"]) for e in merged]
        assert order == [(1.0, "STAR"), (2.0, "MICH"),
                         (3.0, "MICH"), (3.0, "STAR")]
        assert [e.seq for e in merged] == [0, 1, 2, 3]

    def test_equal_timestamps_break_on_site_then_seq(self):
        """Every event at the same instant: site label, then original
        sequence, fully determine the order -- no input-order leakage."""
        a = self._segment("STAR", [5.0, 5.0])
        b = self._segment("MICH", [5.0, 5.0])
        forward = RunJournal.merge([("STAR", a), ("MICH", b)])
        backward = RunJournal.merge([("MICH", b), ("STAR", a)])
        assert forward.to_jsonl() == backward.to_jsonl()
        assert [e.data["site"] for e in forward] == \
            ["MICH", "MICH", "STAR", "STAR"]

    def test_untimed_events_inherit_preceding_time(self):
        """A t=None event sorts with the last timestamped event before
        it in its own segment, so segment-internal order survives."""
        a = RunJournal()
        a.emit("tick", t=1.0, site="STAR")
        a.emit("note", t=None, site="STAR")
        a.emit("tick", t=9.0, site="STAR")
        b = self._segment("MICH", [2.0])
        merged = RunJournal.merge([("STAR", a), ("MICH", b)])
        kinds = [(e.kind, e.data["site"]) for e in merged]
        assert kinds == [("tick", "STAR"), ("note", "STAR"),
                         ("tick", "MICH"), ("tick", "STAR")]

    def test_seq_rebasing_over_rotated_segments(self, tmp_path):
        """Segments that were themselves rotated (non-zero start_seq)
        merge into one contiguous stream from start_seq, and the merge
        of read-back segments is byte-stable."""
        a = RunJournal(start_seq=40)
        a.emit("tick", t=1.0, site="STAR")
        a.emit("tick", t=4.0, site="STAR")
        b = RunJournal(start_seq=90)
        b.emit("tick", t=2.0, site="MICH")
        merged = RunJournal.merge([("STAR", a), ("MICH", b)], start_seq=7)
        assert [e.seq for e in merged] == [7, 8, 9]
        assert merged.next_seq == 10
        # Round-trip through disk: identical merge result.
        pa, pb = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write(pa)
        b.write(pb)
        again = RunJournal.merge(
            [("STAR", RunJournal.read(pa)), ("MICH", RunJournal.read(pb))],
            start_seq=7)
        assert again.to_jsonl() == merged.to_jsonl()

    def test_torn_tail_segment_surfaces_warning(self, tmp_path):
        """A shard segment truncated by a crash still merges, but the
        loss is reported in merge_warnings -- never silent."""
        a = self._segment("STAR", [1.0, 2.0])
        path = tmp_path / "torn.jsonl"
        path.write_text(a.to_jsonl() + '{"seq": 2, "kind": "tick"')
        torn = RunJournal.read(path)
        assert torn.torn_tail is not None
        clean = self._segment("MICH", [1.5])
        merged = RunJournal.merge([("STAR", torn), ("MICH", clean)])
        assert len(merged) == 3
        assert len(merged.merge_warnings) == 1
        assert "STAR" in merged.merge_warnings[0]
        assert "torn tail" in merged.merge_warnings[0]

    def test_clean_merge_has_no_warnings(self):
        merged = RunJournal.merge(
            [("STAR", self._segment("STAR", [1.0]))])
        assert merged.merge_warnings == []

    def test_merge_of_empty_segments(self):
        merged = RunJournal.merge([("STAR", RunJournal()),
                                   ("MICH", RunJournal())], start_seq=3)
        assert len(merged) == 0
        assert merged.next_seq == 3


class TestDiff:
    def test_identical_journals_no_differences(self):
        a, b = RunJournal(), RunJournal()
        for journal in (a, b):
            journal.emit("tick", t=1.0, n=1)
        assert diff_journals(a, b) == []

    def test_differing_event_reported(self):
        a, b = RunJournal(), RunJournal()
        a.emit("tick", t=1.0, n=1)
        b.emit("tick", t=1.0, n=2)
        differences = diff_journals(a, b)
        assert len(differences) == 1
        assert "event 0" in differences[0]

    def test_length_difference_reported(self):
        a, b = RunJournal(), RunJournal()
        a.emit("tick")
        assert any("length" in d for d in diff_journals(a, b))

    def test_difference_cap(self):
        a, b = RunJournal(), RunJournal()
        for i in range(20):
            a.emit("tick", n=i)
            b.emit("tick", n=i + 100)
        differences = diff_journals(a, b, max_differences=3)
        assert differences[-1].startswith("...")
        assert len(differences) == 4
