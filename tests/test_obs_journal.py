"""Tests for the run journal (repro.obs.journal)."""

import enum
from pathlib import Path

from repro.netsim.engine import Simulator
from repro.obs import JournalEvent, RunJournal, diff_journals, jsonable
from repro.obs.clock import SimClock, WallClock


class Color(enum.Enum):
    RED = "red"


class TestJsonable:
    def test_scalars_pass_through(self):
        assert jsonable(1) == 1
        assert jsonable("x") == "x"
        assert jsonable(None) is None

    def test_enum_becomes_value(self):
        assert jsonable(Color.RED) == "red"

    def test_path_becomes_string(self):
        assert jsonable(Path("/a/b")) == "/a/b"

    def test_set_becomes_sorted_list(self):
        assert jsonable({"b", "a"}) == ["a", "b"]

    def test_nested(self):
        assert jsonable({"k": (Color.RED, {1})}) == {"k": ["red", [1]]}

    def test_fallback_to_str(self):
        class Weird:
            def __repr__(self):
                return "weird"
        assert jsonable(Weird()) == "weird"


class TestEmit:
    def test_seq_assignment_and_payload(self):
        journal = RunJournal()
        a = journal.emit("fault", t=1.5, site="STAR")
        b = journal.emit("fault", t=2.5, site="MICH")
        assert (a.seq, b.seq) == (0, 1)
        assert a.data == {"site": "STAR"}
        assert len(journal) == 2

    def test_sim_clock_stamps_deterministic_journal(self):
        sim = Simulator()
        sim.schedule_at(7.0, lambda: None)
        sim.run()
        journal = RunJournal(clock=SimClock(sim))
        event = journal.emit("tick")
        assert event.t == 7.0

    def test_wall_clock_dropped_from_deterministic_journal(self):
        journal = RunJournal(clock=WallClock(), deterministic=True)
        assert journal.emit("tick").t is None

    def test_wall_clock_kept_when_not_deterministic(self):
        journal = RunJournal(clock=WallClock(), deterministic=False)
        assert journal.emit("tick").t is not None

    def test_volatile_dropped_when_deterministic(self):
        det = RunJournal(deterministic=True)
        event = det.emit("pipeline", pcaps=3, volatile={"seconds": 0.12})
        assert event.data == {"pcaps": 3}
        loose = RunJournal(deterministic=False)
        event = loose.emit("pipeline", pcaps=3, volatile={"seconds": 0.12})
        assert event.data == {"pcaps": 3, "seconds": 0.12}

    def test_disabled_journal_is_noop(self):
        journal = RunJournal(enabled=False)
        assert journal.emit("tick") is None
        assert len(journal) == 0


class TestQueriesAndSerialization:
    def make(self):
        journal = RunJournal()
        journal.emit("fault", t=1.0, site="STAR")
        journal.emit("log", t=2.0, message="hi there")
        journal.emit("fault", t=3.0, site="MICH")
        return journal

    def test_of_kind_and_kinds(self):
        journal = self.make()
        assert len(journal.of_kind("fault")) == 2
        assert journal.kinds() == {"fault": 2, "log": 1}

    def test_jsonl_is_canonical(self):
        line = self.make().to_jsonl().splitlines()[0]
        # Sorted keys, compact separators: byte-stable serialization.
        assert line == '{"data":{"site":"STAR"},"kind":"fault","seq":0,"t":1.0}'

    def test_write_read_round_trip(self, tmp_path):
        journal = self.make()
        path = journal.write(tmp_path / "deep" / "journal.jsonl")
        loaded = RunJournal.read(path)
        assert loaded.to_jsonl() == journal.to_jsonl()
        assert [e.kind for e in loaded] == ["fault", "log", "fault"]

    def test_event_json_round_trip(self):
        event = JournalEvent(seq=4, kind="x", t=None, data={"a": 1})
        assert JournalEvent.from_json(event.to_json()) == event


class TestDiff:
    def test_identical_journals_no_differences(self):
        a, b = RunJournal(), RunJournal()
        for journal in (a, b):
            journal.emit("tick", t=1.0, n=1)
        assert diff_journals(a, b) == []

    def test_differing_event_reported(self):
        a, b = RunJournal(), RunJournal()
        a.emit("tick", t=1.0, n=1)
        b.emit("tick", t=1.0, n=2)
        differences = diff_journals(a, b)
        assert len(differences) == 1
        assert "event 0" in differences[0]

    def test_length_difference_reported(self):
        a, b = RunJournal(), RunJournal()
        a.emit("tick")
        assert any("length" in d for d in diff_journals(a, b))

    def test_difference_cap(self):
        a, b = RunJournal(), RunJournal()
        for i in range(20):
            a.emit("tick", n=i)
            b.emit("tick", n=i + 100)
        differences = diff_journals(a, b, max_differences=3)
        assert differences[-1].startswith("...")
        assert len(differences) == 4
