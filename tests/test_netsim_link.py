"""Tests for channels and links: serialization, queueing, drops, taps."""

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.frame import Frame
from repro.netsim.link import Channel, DuplexLink


def frame(size=1000):
    return Frame(wire_len=size, head=b"\x00" * min(size, 64))


class TestSerialization:
    def test_delivery_after_serialization_time(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=8000.0)  # 1000 B/s
        arrivals = []
        channel.connect(lambda f: arrivals.append(sim.now))
        channel.offer(frame(1000))
        sim.run()
        assert arrivals == [pytest.approx(1.0)]

    def test_propagation_delay_added(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=8000.0, propagation_delay=0.5)
        arrivals = []
        channel.connect(lambda f: arrivals.append(sim.now))
        channel.offer(frame(1000))
        sim.run()
        assert arrivals == [pytest.approx(1.5)]

    def test_back_to_back_frames_serialize_sequentially(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=8000.0)
        arrivals = []
        channel.connect(lambda f: arrivals.append(sim.now))
        channel.offer(frame(1000))
        channel.offer(frame(1000))
        sim.run()
        assert arrivals == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_fifo_order(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=1e6)
        order = []
        channel.connect(lambda f: order.append(f.wire_len))
        for size in (100, 200, 300):
            channel.offer(frame(size))
        sim.run()
        assert order == [100, 200, 300]


class TestDrops:
    def test_tail_drop_when_queue_full(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=8000.0, queue_limit_bytes=1500)
        accepted = [channel.offer(frame(1000)) for _ in range(4)]
        # First frame starts serializing immediately (leaves the queue);
        # the next fills the queue; further offers drop.
        assert accepted[0] and accepted[1]
        assert not all(accepted)
        assert channel.stats.dropped_frames >= 1

    def test_drop_counters_track_bytes(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=8.0, queue_limit_bytes=100)
        channel.offer(frame(100))
        channel.offer(frame(100))  # queued
        assert channel.offer(frame(100)) is False
        assert channel.stats.dropped_bytes == 100
        assert channel.stats.offered_frames == 3

    def test_queue_drains_and_recovers(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=8000.0, queue_limit_bytes=1000)
        delivered = []
        channel.connect(lambda f: delivered.append(f))
        channel.offer(frame(1000))
        channel.offer(frame(1000))
        assert channel.offer(frame(1000)) is False
        sim.run()
        assert channel.offer(frame(1000)) is True
        sim.run()
        assert len(delivered) == 3


class TestTaps:
    def test_tap_sees_offered_frames_even_if_dropped(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=8.0, queue_limit_bytes=100)
        tapped = []
        channel.add_tap(tapped.append)
        channel.offer(frame(100))
        channel.offer(frame(100))
        channel.offer(frame(100))  # dropped
        assert len(tapped) == 3
        assert channel.stats.dropped_frames == 1

    def test_remove_tap(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=1e9)
        tapped = []
        tap = tapped.append
        channel.add_tap(tap)
        channel.offer(frame())
        channel.remove_tap(tap)
        channel.offer(frame())
        assert len(tapped) == 1

    def test_multiple_sinks_all_receive(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=1e9)
        a, b = [], []
        channel.connect(a.append)
        channel.connect(b.append)
        channel.offer(frame())
        sim.run()
        assert len(a) == len(b) == 1

    def test_disconnect(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=1e9)
        a = []
        channel.connect(a.append)
        channel.disconnect(a.append)  # bound methods compare equal
        channel.offer(frame())
        sim.run()
        assert a == []


class TestStatsAndUtilization:
    def test_tx_counters(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=1e9)
        channel.offer(frame(500))
        sim.run()
        assert channel.stats.tx_frames == 1
        assert channel.stats.tx_bytes == 500

    def test_utilization_between_snapshots(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=8000.0)  # 1000 B/s
        snapshot = channel.stats.copy()
        channel.offer(frame(500))
        sim.run(until=1.0)
        assert channel.utilization(snapshot, interval=1.0) == pytest.approx(0.5)

    def test_utilization_rejects_bad_interval(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=1e9)
        with pytest.raises(ValueError):
            channel.utilization(channel.stats.copy(), 0.0)


class TestMtu:
    def test_default_mtu_carries_jumbo(self):
        """FABRIC supports jumbo frames throughout (finding B5)."""
        sim = Simulator()
        channel = Channel(sim, rate_bps=1e9)
        assert channel.offer(frame(9000)) is True

    def test_oversize_dropped(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=1e9, mtu=1518)
        assert channel.offer(frame(1600)) is False
        assert channel.oversize_drops == 1
        assert channel.stats.dropped_frames == 1

    def test_mtu_boundary(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=1e9, mtu=1518)
        assert channel.offer(frame(1518)) is True

    def test_mtu_validated(self):
        with pytest.raises(ValueError):
            Channel(Simulator(), rate_bps=1e9, mtu=32)


class TestValidation:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            Channel(Simulator(), rate_bps=0)

    def test_rejects_nonpositive_queue(self):
        with pytest.raises(ValueError):
            Channel(Simulator(), rate_bps=1e9, queue_limit_bytes=0)

    def test_duplex_link_has_independent_channels(self):
        sim = Simulator()
        link = DuplexLink(sim, rate_bps=1e9, name="L")
        link.tx.offer(frame(100))
        sim.run()
        assert link.tx.stats.tx_frames == 1
        assert link.rx.stats.tx_frames == 0
        assert link.rate_bps == 1e9


class TestDeliveredAccounting:
    """End-to-end delivered counters feeding the conservation ledger."""

    def test_delivered_counts_past_propagation(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=8000.0)
        channel.connect(lambda f: None)
        channel.offer(frame(1000))
        channel.offer(frame(500))
        assert channel.stats.delivered_frames == 0
        sim.run()
        assert channel.stats.delivered_frames == 2
        assert channel.stats.delivered_bytes == 1500

    def test_in_flight_is_offered_minus_dropped_minus_delivered(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=8000.0, queue_limit_bytes=1500)
        channel.connect(lambda f: None)
        for _ in range(4):
            channel.offer(frame(1000))  # 2 accepted, 2 tail-dropped
        assert channel.in_flight_frames == 2
        sim.run()
        assert channel.in_flight_frames == 0
        assert channel.stats.offered_frames == \
            channel.stats.dropped_frames + channel.stats.delivered_frames

    def test_mid_serialization_frame_counts_in_flight(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=8000.0)  # 1000 B/s
        channel.connect(lambda f: None)
        channel.offer(frame(1000))
        sim.run(until=0.5)  # halfway through serialization
        assert channel.stats.tx_frames == 0         # not on the wire yet...
        assert channel.stats.delivered_frames == 0
        assert channel.in_flight_frames == 1        # ...but committed to it

    def test_copy_includes_delivered_fields(self):
        sim = Simulator()
        channel = Channel(sim, rate_bps=1e9)
        channel.connect(lambda f: None)
        channel.offer(frame(100))
        sim.run()
        snapshot = channel.stats.copy()
        assert snapshot.delivered_frames == 1
        assert snapshot.delivered_bytes == 100
        channel.offer(frame(100))
        sim.run()
        assert snapshot.delivered_frames == 1  # a true snapshot
        assert channel.stats.delivered_frames == 2
