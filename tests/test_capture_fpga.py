"""Tests for the FPGA offload model."""

import pytest

from repro.capture.dpdk import DpdkCaptureModel, OfferedLoad
from repro.capture.fpga import FpgaOffloadConfig, FpgaOffloadModel


class TestConfig:
    def test_defaults(self):
        config = FpgaOffloadConfig()
        assert config.truncation == 200
        assert config.sample_one_in == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FpgaOffloadConfig(truncation=0)
        with pytest.raises(ValueError):
            FpgaOffloadConfig(sample_one_in=0)


class TestPerFrame:
    def test_truncation(self):
        model = FpgaOffloadModel(FpgaOffloadConfig(truncation=64))
        out = model.process(b"\xaa" * 1514)
        assert len(out) == 64
        assert model.passed == 1

    def test_filter_drops_nonmatching(self):
        config = FpgaOffloadConfig(frame_filter=lambda data: data[0] == 0x01)
        model = FpgaOffloadModel(config)
        assert model.process(b"\x01" + b"\x00" * 100) is not None
        assert model.process(b"\x02" + b"\x00" * 100) is None
        assert model.filtered == 1

    def test_sampling_one_in_n(self):
        model = FpgaOffloadModel(FpgaOffloadConfig(sample_one_in=4))
        passed = sum(1 for _ in range(100)
                     if model.process(b"\x00" * 100) is not None)
        assert passed == 25
        assert model.sampled_out == 75

    def test_transform_applied(self):
        config = FpgaOffloadConfig(transform=lambda data: data.upper())
        model = FpgaOffloadModel(config)
        assert model.process(b"abc" * 40) == b"ABC" * 40


class TestHostLoad:
    def test_truncation_shrinks_host_rate(self):
        model = FpgaOffloadModel(FpgaOffloadConfig(truncation=200))
        wire = OfferedLoad(100e9, 1514)
        host = model.host_load(wire)
        assert host.frame_bytes == 200
        assert host.pps == pytest.approx(wire.pps)
        assert host.rate_bps < wire.rate_bps / 5

    def test_sampling_shrinks_pps(self):
        model = FpgaOffloadModel(FpgaOffloadConfig(sample_one_in=10))
        host = model.host_load(OfferedLoad(100e9, 1514))
        assert host.pps == pytest.approx(OfferedLoad(100e9, 1514).pps / 10)

    def test_match_fraction(self):
        model = FpgaOffloadModel()
        host = model.host_load(OfferedLoad(100e9, 1514), match_fraction=0.5)
        assert host.pps == pytest.approx(OfferedLoad(100e9, 1514).pps / 2)

    def test_match_fraction_validated(self):
        with pytest.raises(ValueError):
            FpgaOffloadModel().host_load(OfferedLoad(1e9, 100), match_fraction=2.0)


class TestEndToEnd:
    def test_offload_beats_raw_dpdk_on_small_frames(self):
        """The point of the FPGA path: line-rate small frames become
        feasible because the host only sees truncations."""
        wire = OfferedLoad(100e9, 128)
        writer = DpdkCaptureModel(cores=15, truncation=64)
        raw = writer.offer(wire)
        offloaded = FpgaOffloadModel(
            FpgaOffloadConfig(truncation=64, sample_one_in=8)
        ).offer_through(writer, wire)
        assert raw.loss_percent > 1.0
        assert offloaded.loss_percent < raw.loss_percent
