"""Property-based tests (hypothesis) on core data structures and invariants."""

import io
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.acap import AcapFile, AcapRecord, read_acap, write_acap
from repro.analysis.anonymize import Anonymizer
from repro.analysis.dissect import Dissector
from repro.netsim.engine import Simulator
from repro.packets.builder import FrameBuilder, FrameSpec, MIN_FRAME_SIZE
from repro.packets.checksum import internet_checksum
from repro.packets.headers import Ethernet, IPv4, MPLS, Payload, TCP, VLAN
from repro.packets.pcap import PcapReader, PcapRecord, PcapWriter
from repro.testbed.resources import ResourceCapacity
from repro.traffic.distributions import PAPER_FRAME_BINS

E1, E2 = "02:00:00:00:00:01", "02:00:00:00:00:02"

ipv4_addrs = st.tuples(*[st.integers(0, 255)] * 4).map(
    lambda t: ".".join(map(str, t)))
ports = st.integers(1, 65535)


class TestChecksumProperties:
    @given(st.binary(min_size=0, max_size=200))
    def test_checksum_verifies(self, data):
        """Appending the checksum always makes the total zero."""
        if len(data) % 2:
            data += b"\x00"
        checksum = internet_checksum(data)
        assert internet_checksum(data + struct.pack("!H", checksum)) == 0

    @given(st.binary(min_size=1, max_size=100))
    def test_checksum_in_range(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF


class TestFrameProperties:
    @given(src=ipv4_addrs, dst=ipv4_addrs, sport=ports, dport=ports,
           vid=st.integers(0, 4095), label=st.integers(0, (1 << 20) - 1),
           target=st.integers(80, 9000))
    @settings(max_examples=60, deadline=None)
    def test_build_dissect_round_trip(self, src, dst, sport, dport, vid,
                                      label, target):
        """Any VLAN/MPLS/IPv4/TCP frame dissects back to its fields."""
        frame = FrameBuilder().build(FrameSpec(
            [Ethernet(E1, E2), VLAN(vid), MPLS(label), IPv4(src, dst),
             TCP(sport, dport), Payload(0)], target_size=target))
        assert len(frame) == max(target, MIN_FRAME_SIZE)
        result = Dissector().dissect(frame[:256])
        assert result.names[:5] == ("eth", "vlan", "mpls", "ipv4", "tcp")
        assert result.first("vlan").fields["vid"] == vid
        assert result.first("mpls").fields["label"] == label
        assert result.first("ipv4").fields["src"] == src
        assert result.first("tcp").fields["sport"] == sport

    @given(st.integers(60, 20000))
    def test_bins_partition_sizes(self, size):
        """Every size lands in exactly one bin."""
        index = PAPER_FRAME_BINS.index_for(size)
        labels = PAPER_FRAME_BINS.labels()
        assert 0 <= index < len(labels)
        histogram = PAPER_FRAME_BINS.histogram([size])
        assert histogram.sum() == 1
        assert histogram[index] == 1


class TestPcapProperties:
    @given(st.lists(
        st.tuples(st.floats(0, 1e6), st.integers(60, 2000), st.integers(60, 256)),
        min_size=0, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_pcap_round_trip(self, specs):
        buf = io.BytesIO()
        writer = PcapWriter(buf, snaplen=256)
        expected = []
        t = 0.0
        for dt, wire, captured in specs:
            t += abs(dt) % 100
            captured = min(captured, wire)
            writer.write(PcapRecord(t, b"\xaa" * captured, orig_len=wire))
            expected.append((t, min(captured, 256), wire))
        buf.seek(0)
        records = PcapReader(buf).read_all()
        assert len(records) == len(expected)
        for record, (ts, captured, wire) in zip(records, expected):
            assert record.timestamp == pytest.approx(ts, abs=1e-5)
            assert len(record.data) == captured
            assert record.orig_len == wire


class TestAcapProperties:
    stacks = st.lists(st.sampled_from(
        ["eth", "vlan", "mpls", "pw", "ipv4", "ipv6", "tcp", "udp", "tls",
         "dns", "data"]), min_size=1, max_size=12).map(tuple)

    @given(st.lists(st.tuples(
        st.floats(0, 1e5), st.integers(60, 9000), stacks,
        st.lists(st.integers(0, 4095), max_size=2).map(tuple),
        st.lists(st.integers(0, 99999), max_size=3).map(tuple),
    ), min_size=0, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_acap_round_trip(self, rows):
        import tempfile
        from pathlib import Path

        records = [
            AcapRecord(timestamp=round(ts, 6), wire_len=wire, captured_len=60,
                       stack=stack, vlan_ids=vlans, mpls_labels=mpls)
            for ts, wire, stack, vlans, mpls in rows
        ]
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.acap"
            write_acap(AcapFile("src", records), path)
            loaded = read_acap(path)
        assert loaded.records == records


class TestResourceProperties:
    vectors = st.builds(
        ResourceCapacity,
        cores=st.integers(0, 1000), ram_gb=st.floats(0, 1e4),
        disk_gb=st.floats(0, 1e6), dedicated_nics=st.integers(0, 10),
        shared_nic_slots=st.integers(0, 400), fpga_nics=st.integers(0, 4))

    @given(vectors, vectors)
    def test_add_sub_inverse(self, a, b):
        result = (a + b) - b
        for (name, got), (_n, want) in zip(result.components(), a.components()):
            assert got == pytest.approx(want, rel=1e-9, abs=1e-6), name

    @given(vectors, vectors)
    def test_fits_within_iff_no_shortfall(self, need, have):
        assert need.fits_within(have) == (need.first_shortfall(have) is None)

    @given(vectors)
    def test_fits_within_self(self, v):
        assert v.fits_within(v)


class TestAnonymizerProperties:
    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_prefix_preservation(self, a, b):
        """The permutation preserves exactly the common-prefix length."""
        anon = Anonymizer(key=b"prop")
        out_a = anon.anonymize_ipv4_int(a)
        out_b = anon.anonymize_ipv4_int(b)

        def prefix(x, y):
            for i in range(32):
                if (x >> (31 - i)) & 1 != (y >> (31 - i)) & 1:
                    return i
            return 32

        assert prefix(out_a, out_b) == prefix(a, b)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_deterministic_and_in_range(self, addr):
        anon = Anonymizer(key=b"prop")
        out = anon.anonymize_ipv4_int(addr)
        assert 0 <= out < 2**32
        assert out == anon.anonymize_ipv4_int(addr)


class TestMirrorSchedulerProperties:
    @given(st.lists(st.tuples(st.integers(0, 4), st.floats(1.0, 50.0)),
                    min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_exclusive_holding_and_full_service(self, requests):
        """At most one holder per port at any instant, and every request
        is eventually granted once leases expire."""
        from repro.core.sharing import MirrorScheduler

        sim = Simulator()
        scheduler = MirrorScheduler(sim, max_lease_seconds=60.0)
        granted = []
        active = {}

        def on_grant(lease, port=None):
            # Exclusive holding: the port must have been free.
            assert active.get(lease.port_id) is None
            active[lease.port_id] = lease.holder
            granted.append(lease.holder)

        def on_revoke(lease):
            assert active.get(lease.port_id) == lease.holder
            active[lease.port_id] = None

        for i, (port_index, duration) in enumerate(requests):
            scheduler.request("S", f"p{port_index}", f"user{i}", duration,
                              on_grant, on_revoke)
        sim.run(until=60.0 * (len(requests) + 1))
        assert len(granted) == len(requests)


class TestSimulatorProperties:
    @given(st.lists(st.floats(0.001, 100.0), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_events_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
