"""Tests for flow generation: encapsulation, frames, pacing, control."""

import numpy as np
import pytest

from repro.analysis.dissect import Dissector
from repro.testbed import FederationBuilder
from repro.traffic.encapsulation import EncapKind, underlay_stack
from repro.traffic.endpoints import EndpointRegistry
from repro.traffic.flows import STANDARD_APPS, AppSpec, Flow


@pytest.fixture()
def world():
    federation = FederationBuilder(seed=42).build(site_names=["STAR", "MICH"])
    registry = EndpointRegistry(federation)
    a = registry.create("STAR", "slice-a")
    b = registry.create("STAR", "slice-a")
    c = registry.create("MICH", "slice-a")
    return federation, a, b, c


def make_flow(federation, src, dst, app="iperf-tcp", total=200_000, **kwargs):
    return Flow(
        sim=federation.sim, flow_id=1, src=src, dst=dst,
        app=STANDARD_APPS[app], total_bytes=total,
        rng=np.random.default_rng(0), **kwargs,
    )


def collect_at(endpoint):
    got = []
    endpoint.nic_port.receive(got.append)
    return got


class TestEncapsulation:
    def test_underlay_overheads(self):
        assert EncapKind.PLAIN.header_depth == 1
        assert EncapKind.VLAN_MPLS_PW.header_depth == 6

    def test_pw_stack_has_inner_ethernet(self):
        stack = underlay_stack(EncapKind.VLAN_MPLS_PW, "02:00:00:00:00:01",
                               "02:00:00:00:00:02", inner_src_mac="02:00:00:00:00:03",
                               inner_dst_mac="02:00:00:00:00:04")
        assert len(stack) == 6
        assert stack[-1].src == "02:00:00:00:00:03"


class TestFlowFrames:
    def test_data_frame_size_includes_underlay(self, world):
        federation, a, b, _c = world
        flow = make_flow(federation, a, b, encap=EncapKind.VLAN_MPLS)
        assert flow._data_template.wire_len == 1514 + 8

    def test_pw_data_frame_size(self, world):
        federation, a, b, _c = world
        flow = make_flow(federation, a, b, encap=EncapKind.VLAN_MPLS_PW)
        assert flow._data_template.wire_len == 1514 + 30

    def test_ack_is_small(self, world):
        federation, a, b, _c = world
        flow = make_flow(federation, a, b)
        assert 64 <= flow._ack_template.wire_len <= 127

    def test_data_frame_dissects_fully(self, world):
        federation, a, b, _c = world
        flow = make_flow(federation, a, b, app="iperf-tcp",
                         encap=EncapKind.VLAN_MPLS_PW)
        names = Dissector().dissect(flow._data_template.head).names
        assert names[:7] == ("eth", "vlan", "mpls", "mpls", "pw", "eth", "ipv4")
        assert "tcp" in names

    def test_ipv6_flow(self, world):
        federation, a, b, _c = world
        flow = make_flow(federation, a, b, use_ipv6=True)
        names = Dissector().dissect(flow._data_template.head).names
        assert "ipv6" in names and "ipv4" not in names

    def test_rejects_empty_flow(self, world):
        federation, a, b, _c = world
        with pytest.raises(ValueError):
            make_flow(federation, a, b, total=0)


class TestFlowDynamics:
    def test_delivery_to_destination(self, world):
        federation, a, b, _c = world
        got = collect_at(b)
        flow = make_flow(federation, a, b, total=50_000)
        flow.start()
        federation.sim.run()
        data_frames = [f for f in got if f.wire_len > 1000]
        assert len(data_frames) == flow.expected_data_frames

    def test_acks_flow_backward(self, world):
        federation, a, b, _c = world
        got_at_src = collect_at(a)
        flow = make_flow(federation, a, b, total=100_000)
        flow.start()
        federation.sim.run()
        acks = [f for f in got_at_src if f.wire_len < 200]
        # ack_every=6 for iperf-tcp.
        assert len(acks) >= flow.frames_sent // 6

    def test_tcp_flow_opens_with_syn(self, world):
        federation, a, b, _c = world
        got = collect_at(b)
        flow = make_flow(federation, a, b, total=20_000)
        flow.start()
        federation.sim.run()
        first = Dissector().dissect(got[0].captured_bytes(200))
        tcp = first.first("tcp")
        assert tcp.fields["syn"]

    def test_tcp_flow_closes(self, world):
        federation, a, b, _c = world
        got = collect_at(b)
        flow = make_flow(federation, a, b, total=20_000)
        flow.start()
        federation.sim.run()
        last = Dissector().dissect(got[-1].captured_bytes(200))
        tcp = last.first("tcp")
        assert tcp.fields["fin"] or tcp.fields["rst"]

    def test_stop_time_truncates(self, world):
        federation, a, b, _c = world
        flow = make_flow(federation, a, b, total=10**9, stop_time=0.5)
        flow.start()
        federation.sim.run(until=2.0)
        assert flow.finished
        assert flow.bytes_sent < 10**9

    def test_pacing_matches_rate(self, world):
        federation, a, b, _c = world
        got = collect_at(b)
        flow = make_flow(federation, a, b, total=500_000)
        flow.start()
        federation.sim.run()
        data = [f for f in got if f.wire_len > 1000]
        # ~40 Mbps with 1522 B frames -> ~0.3 ms between frames.
        assert flow._data_interval == pytest.approx(1522 * 8 / 40e6)
        assert len(data) > 100

    def test_rate_scale(self, world):
        federation, a, b, _c = world
        fast = make_flow(federation, a, b, rate_scale=2.0)
        slow = make_flow(federation, a, b, rate_scale=0.5)
        assert fast._data_interval < slow._data_interval

    def test_cross_site_flow_delivery(self, world):
        federation, a, _b, c = world
        got = collect_at(c)
        flow = make_flow(federation, a, c, total=30_000)
        flow.start()
        federation.sim.run()
        assert len(got) > 0

    def test_request_response_app(self, world):
        federation, a, b, _c = world
        got_b = collect_at(b)
        got_a = collect_at(a)
        flow = make_flow(federation, a, b, app="dns", total=90)
        flow.start()
        federation.sim.run()
        assert len(got_b) >= 1   # request(s)
        assert len(got_a) >= 1   # response(s)

    def test_udp_has_no_handshake(self, world):
        federation, a, b, _c = world
        got = collect_at(b)
        flow = make_flow(federation, a, b, app="dns", total=90)
        flow.start()
        federation.sim.run()
        first = Dissector().dissect(got[0].captured_bytes(200))
        assert first.has("udp") and not first.has("tcp")


class TestAppSpecs:
    def test_standard_apps_cover_paper_protocols(self):
        names = set(STANDARD_APPS)
        assert {"iperf-tcp", "iperf-jumbo", "tls-web", "http", "ssh",
                "dns", "ntp", "icmp"} <= names

    def test_bad_transport_rejected(self):
        with pytest.raises(ValueError):
            AppSpec("x", "sctp", 1)

    def test_tiny_inner_frame_rejected(self):
        with pytest.raises(ValueError):
            AppSpec("x", "tcp", 1, inner_frame_size=10)

    def test_jumbo_app_uses_jumbo_frames(self):
        assert STANDARD_APPS["iperf-jumbo"].inner_frame_size > 8000
