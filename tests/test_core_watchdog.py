"""Tests for the instance watchdog."""

import numpy as np
import pytest

from repro.core.logs import InstanceLog
from repro.core.watchdog import Watchdog
from repro.netsim.engine import Simulator


def make(sim, used_fn, quota=1000.0, crash=0.0, interval=10.0):
    aborts = []
    watchdog = Watchdog(
        sim=sim, log=InstanceLog("STAR", "t"),
        disk_quota_bytes=quota, used_bytes_fn=used_fn,
        on_abort=aborts.append, interval=interval,
        crash_probability_per_check=crash,
        rng=np.random.default_rng(0),
    )
    return watchdog, aborts


class TestWatchdog:
    def test_healthy_keeps_checking(self):
        sim = Simulator()
        watchdog, aborts = make(sim, lambda: 10.0)
        watchdog.start()
        sim.run(until=100.0)
        assert watchdog.checks == 10
        assert aborts == []

    def test_storage_exhaustion_aborts(self):
        sim = Simulator()
        used = {"bytes": 0.0}
        watchdog, aborts = make(sim, lambda: used["bytes"], quota=1000.0)
        watchdog.start()
        sim.run(until=15.0)
        used["bytes"] = 2000.0
        sim.run(until=25.0)
        assert aborts == ["storage exhausted"]
        assert watchdog.tripped

    def test_no_checks_after_trip(self):
        sim = Simulator()
        watchdog, aborts = make(sim, lambda: 5000.0, quota=1000.0)
        watchdog.start()
        sim.run(until=100.0)
        assert len(aborts) == 1
        assert watchdog.checks == 1

    def test_crash_injection(self):
        sim = Simulator()
        watchdog, aborts = make(sim, lambda: 0.0, crash=1.0)
        watchdog.start()
        sim.run(until=15.0)
        assert aborts == ["instance crashed"]

    def test_stop_cancels(self):
        sim = Simulator()
        watchdog, aborts = make(sim, lambda: 0.0)
        watchdog.start()
        sim.run(until=15.0)
        watchdog.stop()
        sim.run(until=100.0)
        assert watchdog.checks == 1

    def test_double_start_rejected(self):
        sim = Simulator()
        watchdog, _ = make(sim, lambda: 0.0)
        watchdog.start()
        with pytest.raises(RuntimeError):
            watchdog.start()

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Watchdog(sim, InstanceLog("S", "i"), 100, lambda: 0,
                     lambda r: None, interval=0)
        with pytest.raises(ValueError):
            Watchdog(sim, InstanceLog("S", "i"), 100, lambda: 0,
                     lambda r: None, crash_probability_per_check=1.5)
