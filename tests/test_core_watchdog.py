"""Tests for the instance watchdog."""

import numpy as np
import pytest

from repro.core.logs import InstanceLog
from repro.core.watchdog import Watchdog
from repro.netsim.engine import Simulator
from repro.obs import Observability, scoped


def make(sim, used_fn, quota=1000.0, crash=0.0, interval=10.0,
         liveness_fn=None):
    aborts = []
    watchdog = Watchdog(
        sim=sim, log=InstanceLog("STAR", "t"),
        disk_quota_bytes=quota, used_bytes_fn=used_fn,
        on_abort=aborts.append, interval=interval,
        crash_probability_per_check=crash,
        rng=np.random.default_rng(0),
        liveness_fn=liveness_fn,
    )
    return watchdog, aborts


class TestWatchdog:
    def test_healthy_keeps_checking(self):
        sim = Simulator()
        watchdog, aborts = make(sim, lambda: 10.0)
        watchdog.start()
        sim.run(until=100.0)
        assert watchdog.checks == 10
        assert aborts == []

    def test_storage_exhaustion_aborts(self):
        sim = Simulator()
        used = {"bytes": 0.0}
        watchdog, aborts = make(sim, lambda: used["bytes"], quota=1000.0)
        watchdog.start()
        sim.run(until=15.0)
        used["bytes"] = 2000.0
        sim.run(until=25.0)
        assert aborts == ["storage exhausted"]
        assert watchdog.tripped

    def test_no_checks_after_trip(self):
        sim = Simulator()
        watchdog, aborts = make(sim, lambda: 5000.0, quota=1000.0)
        watchdog.start()
        sim.run(until=100.0)
        assert len(aborts) == 1
        assert watchdog.checks == 1

    def test_crash_injection(self):
        sim = Simulator()
        watchdog, aborts = make(sim, lambda: 0.0, crash=1.0)
        watchdog.start()
        sim.run(until=15.0)
        assert aborts == ["instance crashed"]

    def test_stop_cancels(self):
        sim = Simulator()
        watchdog, aborts = make(sim, lambda: 0.0)
        watchdog.start()
        sim.run(until=15.0)
        watchdog.stop()
        sim.run(until=100.0)
        assert watchdog.checks == 1

    def test_double_start_rejected(self):
        sim = Simulator()
        watchdog, _ = make(sim, lambda: 0.0)
        watchdog.start()
        with pytest.raises(RuntimeError):
            watchdog.start()

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Watchdog(sim, InstanceLog("S", "i"), 100, lambda: 0,
                     lambda r: None, interval=0)
        with pytest.raises(ValueError):
            Watchdog(sim, InstanceLog("S", "i"), 100, lambda: 0,
                     lambda r: None, crash_probability_per_check=1.5)


class TestLifecycle:
    def test_stop_then_restart_resumes_checking(self):
        sim = Simulator()
        watchdog, aborts = make(sim, lambda: 0.0)
        watchdog.start()
        sim.run(until=15.0)
        watchdog.stop()
        assert not watchdog.running
        sim.run(until=50.0)
        assert watchdog.checks == 1
        watchdog.start()          # re-start after stop is allowed
        assert watchdog.running
        sim.run(until=100.0)
        assert watchdog.checks > 1
        assert aborts == []

    def test_stop_is_idempotent(self):
        sim = Simulator()
        watchdog, _ = make(sim, lambda: 0.0)
        watchdog.start()
        watchdog.stop()
        watchdog.stop()
        assert not watchdog.running

    def test_rearm_clears_trip_and_resumes(self):
        sim = Simulator()
        used = {"bytes": 5000.0}
        watchdog, aborts = make(sim, lambda: used["bytes"], quota=1000.0)
        watchdog.start()
        sim.run(until=15.0)
        assert watchdog.tripped
        assert watchdog.trips == 1
        used["bytes"] = 0.0
        watchdog.rearm()
        assert not watchdog.tripped
        sim.run(until=100.0)
        assert watchdog.checks > 1
        assert aborts == ["storage exhausted"]

    def test_rearm_while_running_does_not_double_schedule(self):
        sim = Simulator()
        watchdog, _ = make(sim, lambda: 0.0)
        watchdog.start()
        watchdog.rearm()
        sim.run(until=25.0)
        assert watchdog.checks == 2   # one check per interval, not two


class TestLiveness:
    def test_liveness_failure_trips(self):
        sim = Simulator()
        dead = {"reason": None}
        watchdog, aborts = make(sim, lambda: 0.0,
                                liveness_fn=lambda: dead["reason"])
        watchdog.start()
        sim.run(until=15.0)
        assert aborts == []
        dead["reason"] = "vm listener0 died"
        sim.run(until=25.0)
        assert aborts == ["vm listener0 died"]
        assert watchdog.tripped

    def test_liveness_checked_after_storage(self):
        sim = Simulator()
        watchdog, aborts = make(sim, lambda: 5000.0, quota=1000.0,
                                liveness_fn=lambda: "vm died")
        watchdog.start()
        sim.run(until=15.0)
        assert aborts == ["storage exhausted"]


class TestJournalSchema:
    """RL009 regression: one key set per ``watchdog`` event kind.

    The trip and healthy paths once emitted different shapes (trip had
    ``reason`` but no ``used``; healthy the reverse), so a consumer
    reading one field saw KeyErrors on the other verdict.  Pin the
    canonical schema here so the drift cannot come back."""

    CANONICAL_KEYS = {"site", "instance", "verdict", "reason", "used"}

    def test_healthy_and_trip_share_one_key_set(self):
        sim = Simulator()
        with scoped(Observability.create(sim=sim)) as obs:
            used = {"bytes": 0.0}
            watchdog, _aborts = make(sim, lambda: used["bytes"], quota=1000.0)
            watchdog.start()
            sim.run(until=15.0)      # one healthy check
            used["bytes"] = 5000.0
            sim.run(until=25.0)      # one trip
        events = obs.journal.of_kind("watchdog")
        assert {e.data["verdict"] for e in events} == {"healthy", "trip"}
        for event in events:
            assert set(event.data) == self.CANONICAL_KEYS

    def test_healthy_reason_is_null_not_absent(self):
        sim = Simulator()
        with scoped(Observability.create(sim=sim)) as obs:
            watchdog, _aborts = make(sim, lambda: 10.0)
            watchdog.start()
            sim.run(until=15.0)
        [event] = obs.journal.of_kind("watchdog")
        assert event.data["verdict"] == "healthy"
        assert event.data["reason"] is None
        assert event.data["used"] == 10
