"""Fixture-based coverage for every reprolint rule.

Each rule has a paired bad/good snippet under ``tests/lint_fixtures/``:
the bad file must produce at least one violation *of that rule* (the
checker catches the invariant break) and the good file must produce
none (no false positives on the sanctioned pattern).  Line-level
assertions pin the violations to the deliberate sins, not incidental
code.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.devtools.lint.context import FileContext
from repro.devtools.lint.pragmas import suppresses
from repro.devtools.lint.project import ProjectIndex
from repro.devtools.lint.rules import PROJECT_RULES, RULES

FIXTURES = Path(__file__).parent / "lint_fixtures"
ALL_RULES = sorted(RULES)
ALL_PROJECT_RULES = sorted(PROJECT_RULES)


def violations(fixture: str, rule_id: str):
    """Run one rule over one fixture, honoring pragmas (as the engine
    does) so good fixtures can demonstrate the sanctioned escape hatch."""
    path = FIXTURES / fixture
    source = path.read_text()
    ctx = FileContext(path, fixture, source, ast.parse(source))
    return [
        v for v in RULES[rule_id](ctx, {}).run()
        if not suppresses(ctx.file_pragmas, rule_id)
        and not suppresses(ctx.line_pragmas.get(v.line, set()), rule_id)
    ]


def project_violations(fixture: str, rule_id: str, options=None):
    """Run one *project* rule over the whole-program index of one
    fixture (uncached -- fixtures are tiny)."""
    path = FIXTURES / fixture
    source = path.read_text()
    ctx = FileContext(path, fixture, source, ast.parse(source))
    index = ProjectIndex.build([ctx], cache_path=None)
    rule = PROJECT_RULES[rule_id](index, options or {})
    return [
        v for v in rule.run()
        if not suppresses(ctx.file_pragmas, rule_id)
        and not suppresses(ctx.line_pragmas.get(v.line, set()), rule_id)
    ]


def bad_lines(fixture: str, rule_id: str):
    return {v.line for v in violations(fixture, rule_id)}


def project_bad_lines(fixture: str, rule_id: str):
    return {v.line for v in project_violations(fixture, rule_id)}


# -- the generic contract: bad fires, good is silent ---------------------


@pytest.mark.parametrize("rule_id", ALL_RULES)
def test_bad_fixture_caught(rule_id):
    fixture = f"{rule_id.lower()}_bad.py"
    found = violations(fixture, rule_id)
    assert found, f"{rule_id} missed every violation in {fixture}"
    assert all(v.rule == rule_id for v in found)


@pytest.mark.parametrize("rule_id", ALL_RULES)
def test_good_fixture_clean(rule_id):
    fixture = f"{rule_id.lower()}_good.py"
    assert violations(fixture, rule_id) == [], \
        f"{rule_id} false-positives on {fixture}"


@pytest.mark.parametrize("rule_id", ALL_RULES)
def test_rules_have_identity(rule_id):
    rule = RULES[rule_id]
    assert rule.name and rule.summary, f"{rule_id} lacks name/summary"


@pytest.mark.parametrize("rule_id", ALL_PROJECT_RULES)
def test_project_bad_fixture_caught(rule_id):
    fixture = f"{rule_id.lower()}_bad.py"
    found = project_violations(fixture, rule_id)
    assert found, f"{rule_id} missed every violation in {fixture}"
    assert all(v.rule == rule_id for v in found)


@pytest.mark.parametrize("rule_id", ALL_PROJECT_RULES)
def test_project_good_fixture_clean(rule_id):
    fixture = f"{rule_id.lower()}_good.py"
    assert project_violations(fixture, rule_id) == [], \
        f"{rule_id} false-positives on {fixture}"


@pytest.mark.parametrize("rule_id", ALL_PROJECT_RULES)
def test_project_rules_have_identity(rule_id):
    rule = PROJECT_RULES[rule_id]
    assert rule.name and rule.summary, f"{rule_id} lacks name/summary"


# -- per-rule pinpoint assertions ----------------------------------------


def test_rl001_flags_every_wall_read():
    assert bad_lines("rl001_bad.py", "RL001") >= {11, 15, 16, 17}


def test_rl001_allows_clock_boundary_by_default():
    rule = RULES["RL001"](None, {})  # ctx unused by applies_to
    assert not rule.applies_to("src/repro/obs/clock.py")
    assert rule.applies_to("src/repro/core/instance.py")


def test_rl002_catches_each_entropy_flavor():
    lines = bad_lines("rl002_bad.py", "RL002")
    # stdlib random, unseeded default_rng, legacy global, uuid4+urandom,
    # id()-sort, list(set(..)), bare-set for-loop.
    assert len(lines) >= 7


def test_rl003_catches_aliased_and_async_sleeps():
    assert len(bad_lines("rl003_bad.py", "RL003")) == 3


def test_rl004_catches_reintroduced_pr3_desync():
    """Acceptance gate: re-introducing the PR 3 template-cache bug --
    a shared seeded RNG drawn only on a cache miss -- must be caught."""
    found = violations("rl004_bad.py", "RL004")
    messages = " ".join(v.message for v in found)
    assert len(found) == 3  # miss-path draw x2 + in-guard draw
    assert "desync" in messages
    # The distilled FlowTemplate.build draw is the original incident.
    assert any("rng.integers" in v.snippet for v in found)


def test_rl004_accepts_the_shipped_fixes():
    # Derived-local-RNG and unconditional-draw variants stay silent.
    assert violations("rl004_good.py", "RL004") == []


def test_rl005_taints_derived_values_and_explicit_t():
    found = violations("rl005_bad.py", "RL005")
    fields = {v.message.split("`")[1] for v in found}
    assert fields == {"seconds=", "at=", "t="}


def test_rl006_flags_silent_broad_and_bare():
    assert len(bad_lines("rl006_bad.py", "RL006")) == 2


def test_rl007_names_the_taxonomy_in_the_message():
    found = violations("rl007_bad.py", "RL007")
    assert len(found) == 4
    assert all("mirror-egress" in v.message for v in found)


def test_rl007_fallback_matches_ledger():
    """The offline fallback vocabulary must track the live taxonomy."""
    from repro.devtools.lint.rules.rl007_drop_causes import (
        FALLBACK_TAXONOMY, taxonomy)
    assert taxonomy() == FALLBACK_TAXONOMY


def test_rl008_flags_each_clobber_flavor():
    # "w" open, .write_text, .write_bytes, keyword mode="xb".
    assert bad_lines("rl008_bad.py", "RL008") == {14, 20, 24, 28}


def test_rl008_scope_is_inclusive():
    """RL008 inverts the usual scope: it fires only inside the modules
    registered as durable-state writers, everywhere else is exempt."""
    rule = RULES["RL008"](None, {})  # ctx unused by applies_to
    assert rule.applies_to("src/repro/core/checkpoint.py")
    assert rule.applies_to("src/repro/core/campaign.py")
    assert rule.applies_to("src/repro/obs/journal.py")
    assert not rule.applies_to("src/repro/core/instance.py")
    assert not rule.applies_to("src/repro/util/atomio.py")


def test_rl008_fallback_matches_registry():
    """The offline fallback must track the live durable-module registry."""
    from repro.devtools.lint.rules.rl008_atomic_writes import (
        FALLBACK_DURABLE_MODULES, durable_modules)
    assert durable_modules() == FALLBACK_DURABLE_MODULES


def test_rl000_flags_missing_and_empty_reasons():
    # Reasonless file pragma, reasonless line pragma, empty `--` clause.
    assert bad_lines("rl000_bad.py", "RL000") == {9, 11, 12}


def test_rl000_is_not_self_suppressible():
    assert not RULES["RL000"].suppressible


def test_rl009_typo_gets_did_you_mean():
    found = project_violations("rl009_bad.py", "RL009")
    typo = [v for v in found
            if v.message.startswith("event kind `sheduled` is emitted")]
    assert typo and "did you mean `scheduled`" in typo[0].message


def test_rl009_flags_each_contract_break():
    found = project_violations("rl009_bad.py", "RL009")
    messages = " ".join(v.message for v in found)
    assert "emitted but never consumed" in messages
    assert "consumed but never emitted" in messages
    assert "drifts from the key set" in messages
    # The drift site names the missing/extra keys.
    drift = [v for v in found if "drifts" in v.message][0]
    assert "drops" in drift.message and "bytes" in drift.message


def test_rl009_observe_only_waives_unconsumed():
    found = project_violations(
        "rl009_bad.py", "RL009",
        options={"observe_only": ["report", "sheduled"]})
    assert all("never consumed" not in v.message for v in found)


def test_rl009_good_resolves_constants_and_defaults():
    """The good fixture only passes if kinds routed through a parameter
    default ("snapshot") and a module constant tuple (SPAN_KINDS) both
    resolve -- i.e. string propagation actually works."""
    assert project_violations("rl009_good.py", "RL009") == []


def test_rl010_flags_each_boundary_sin():
    found = project_violations("rl010_bad.py", "RL010")
    messages = " ".join(v.message for v in found)
    assert "lambda" in messages
    assert "nested function" in messages
    assert "`handle`" in messages       # open file as submit arg
    assert "`journals`" in messages     # RunJournals into iter_shard_results


def test_rl011_confines_and_traces():
    found = project_violations("rl011_bad.py", "RL011")
    messages = " ".join(v.message for v in found)
    assert "os.replace" in messages
    assert "CampaignLog" in messages
    # The reachability check names the worker entry and the call chain.
    reach = [v for v in found if "reaches durability call" in v.message]
    assert reach and "worker_entry -> _persist" in reach[0].message


def test_rl012_flags_each_provenance_break():
    found = project_violations("rl012_bad.py", "RL012")
    messages = " ".join(v.message for v in found)
    assert "raw integer seed" in messages
    assert "string domain" in messages          # numeric label
    assert "seed parameter `seed`" in messages  # int literal via call graph
    assert "crosses the `submit` process boundary" in messages


def test_rl012_accepts_hash_of_string_seeds():
    assert project_violations("rl012_good.py", "RL012") == []
