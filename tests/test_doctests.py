"""Run the library's docstring examples as tests."""

import doctest

import pytest

import repro.netsim.engine
import repro.util.units

MODULES = [repro.util.units, repro.netsim.engine]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    assert result.attempted > 0
