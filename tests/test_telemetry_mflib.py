"""Tests for the MFlib query front-end."""

import pytest

from repro.telemetry.mflib import MFlib
from repro.telemetry.timeseries import CounterStore


def populated_store():
    """Two ports polled every 300 s; p1 busy, p2 quiet."""
    store = CounterStore()
    for i, t in enumerate([0.0, 300.0, 600.0, 900.0]):
        # p1 sends 375 MB per interval = 10 Mbps.
        store.append("STAR", "p1", "tx_bytes", t, i * 375_000_000)
        store.append("STAR", "p1", "rx_bytes", t, i * 37_500_000)  # 1 Mbps
        store.append("STAR", "p1", "tx_drops", t, i * 10)
        store.append("STAR", "p1", "rx_drops", t, 0)
        store.append("STAR", "p2", "tx_bytes", t, 0)
        store.append("STAR", "p2", "rx_bytes", t, 0)
        store.append("STAR", "p2", "tx_drops", t, 0)
        store.append("STAR", "p2", "rx_drops", t, 0)
    return store


@pytest.fixture()
def mflib():
    return MFlib(populated_store())


class TestPortRates:
    def test_rate_computation(self, mflib):
        rates = mflib.port_rates("STAR", "p1", 0.0, 900.0)
        assert rates.tx_bps == pytest.approx(10e6)
        assert rates.rx_bps == pytest.approx(1e6)
        assert rates.total_bps == pytest.approx(11e6)

    def test_sub_window(self, mflib):
        rates = mflib.port_rates("STAR", "p1", 300.0, 600.0)
        assert rates.tx_bps == pytest.approx(10e6)
        assert rates.window_start == 300.0
        assert rates.window_end == 600.0

    def test_unpolled_port_returns_none(self, mflib):
        assert mflib.port_rates("STAR", "p9", 0.0, 900.0) is None

    def test_window_too_narrow_returns_none(self, mflib):
        # Between two polls there is only one usable sample.
        assert mflib.port_rates("STAR", "p1", 301.0, 302.0) is None

    def test_window_starting_before_first_poll_answerable(self, mflib):
        """A query reaching before telemetry began anchors on the first
        poll inside the window instead of giving up (the regression that
        silently degraded busiest-port cycling to random picks)."""
        rates = mflib.port_rates("STAR", "p1", -600.0, 900.0)
        assert rates is not None
        assert rates.window_start == 0.0
        assert rates.tx_bps == pytest.approx(10e6)

    def test_degenerate_window_returns_none(self, mflib):
        """Zero-width and inverted windows are a query-data problem like
        any other unanswerable window: the caller gets None (and falls
        back to random port picks), not an exception that kills the
        cycling loop."""
        assert mflib.port_rates("STAR", "p1", 100.0, 100.0) is None
        assert mflib.port_rates("STAR", "p1", 200.0, 100.0) is None

    def test_drops_delta(self, mflib):
        rates = mflib.port_rates("STAR", "p1", 0.0, 900.0)
        assert rates.tx_drops == 30


class TestRankings:
    def test_busiest_first(self, mflib):
        ranked = mflib.busiest_ports("STAR", 0.0, 900.0)
        assert ranked[0].port_id == "p1"

    def test_restrict_to(self, mflib):
        ranked = mflib.busiest_ports("STAR", 0.0, 900.0, restrict_to=["p2"])
        assert [r.port_id for r in ranked] == ["p2"]

    def test_non_idle_excludes_quiet(self, mflib):
        assert mflib.non_idle_ports("STAR", 0.0, 900.0) == ["p1"]

    def test_non_idle_threshold(self, mflib):
        # With an absurd threshold nothing is non-idle.
        assert mflib.non_idle_ports("STAR", 0.0, 900.0,
                                    idle_threshold_bps=1e12) == []


class TestCongestionInference:
    def test_overload_detected(self, mflib):
        # Mirrored port moves 11 Mbps total; destination line rate 10 Mbps.
        assert mflib.mirror_overload("STAR", "p1", 10e6, 0.0, 900.0) is True

    def test_no_overload(self, mflib):
        assert mflib.mirror_overload("STAR", "p1", 100e6, 0.0, 900.0) is False

    def test_unanswerable(self, mflib):
        assert mflib.mirror_overload("STAR", "p9", 10e6, 0.0, 900.0) is None

    def test_headroom(self, mflib):
        # 11 Mbps vs 12 Mbps line rate: fine at headroom 1.0, flagged at 0.5.
        assert mflib.mirror_overload("STAR", "p1", 12e6, 0.0, 900.0) is False
        assert mflib.mirror_overload("STAR", "p1", 12e6, 0.0, 900.0,
                                     headroom=0.5) is True


class TestUtilization:
    def test_utilization(self, mflib):
        util = mflib.utilization("STAR", "p1", 100e6, 0.0, 900.0)
        assert util == pytest.approx(0.1)

    def test_drop_delta(self, mflib):
        assert mflib.drop_delta("STAR", "p1", 0.0, 900.0) == 30
        assert mflib.drop_delta("STAR", "p2", 0.0, 900.0) == 0


def reset_store():
    """A switch restart at t=600: counters climb, vanish, climb again."""
    store = CounterStore()
    rows = [(0.0, 0, 0), (300.0, 375_000_000, 10),
            (600.0, 0, 0), (900.0, 375_000_000, 5)]
    for t, tx, drops in rows:
        store.append("STAR", "p1", "tx_bytes", t, tx)
        store.append("STAR", "p1", "rx_bytes", t, tx // 10)
        store.append("STAR", "p1", "tx_drops", t, drops)
        store.append("STAR", "p1", "rx_drops", t, 0)
    return store


class TestCounterResets:
    """Deltas follow PromQL increase(): resets never go negative."""

    def test_rates_sum_both_climbs(self):
        # Naive last-minus-first sees 375 MB; the true traffic was 750 MB.
        rates = MFlib(reset_store()).port_rates("STAR", "p1", 0.0, 900.0)
        assert rates.tx_bps == pytest.approx(750_000_000 * 8 / 900.0)
        assert rates.rx_bps == pytest.approx(75_000_000 * 8 / 900.0)
        assert rates.tx_bps >= 0.0

    def test_reset_boundary_contributes_nothing(self):
        rates = MFlib(reset_store()).port_rates("STAR", "p1", 300.0, 600.0)
        assert rates.tx_bps == 0.0
        assert rates.tx_drops == 0

    def test_drop_delta_across_reset(self):
        assert MFlib(reset_store()).drop_delta("STAR", "p1", 0.0, 900.0) == 15

    def test_monotone_counters_unchanged(self, mflib):
        # Without resets increase() telescopes to last-minus-first, so
        # every pre-existing answer stands.
        rates = mflib.port_rates("STAR", "p1", 0.0, 900.0)
        assert rates.tx_bps == pytest.approx(10e6)
        assert rates.tx_drops == 30


class TestWindowBoundaries:
    """Samples landing exactly on window edges are counted once."""

    def test_polls_at_both_edges_included(self, mflib):
        rates = mflib.port_rates("STAR", "p1", 300.0, 900.0)
        assert rates.window_start == 300.0
        assert rates.window_end == 900.0
        assert rates.tx_bps == pytest.approx(10e6)

    def test_anchor_prefers_last_pre_window_poll(self, mflib):
        rates = mflib.port_rates("STAR", "p1", 450.0, 900.0)
        assert rates.window_start == 300.0

    def test_single_sample_unanswerable(self):
        store = CounterStore()
        for counter in ("tx_bytes", "rx_bytes", "tx_drops", "rx_drops"):
            store.append("STAR", "p1", counter, 0.0, 0)
        assert MFlib(store).port_rates("STAR", "p1", 0.0, 100.0) is None


class TestPollerRestartRegression:
    def test_rates_survive_switch_counter_reset(self, federation, poller):
        """End-to-end through SNMPPoller: a switch whose counters reset
        mid-window must never produce a negative rate (the bug that made
        busiest-port cycling rank a restarted switch last)."""
        from repro.netsim.link import ChannelStats

        sim = federation.sim
        switch = federation.site("STAR").switch
        port_id, port = sorted(switch.ports.items())[0]
        sim.run(until=15.0)                      # polls at t=0, 10
        port.link.tx.stats.tx_bytes += 1_000_000
        sim.run(until=25.0)                      # poll at 20 sees the climb
        port.link.tx.stats = ChannelStats()      # switch restart
        port.link.rx.stats = ChannelStats()
        sim.run(until=45.0)                      # polls at 30, 40 see zeros
        port.link.tx.stats.tx_bytes += 500_000
        sim.run(until=65.0)                      # polls at 50, 60
        rates = MFlib(poller.store).port_rates("STAR", port_id, 0.0, 60.0)
        assert rates is not None
        window = rates.window_end - rates.window_start
        assert rates.tx_bps == pytest.approx(1_500_000 * 8.0 / window)
        assert rates.rx_bps >= 0.0
        assert rates.tx_drops >= 0
