"""Tests for the per-site Patchwork instance."""

import numpy as np
import pytest

from repro.core.config import PatchworkConfig, SamplingPlan
from repro.core.instance import PatchworkInstance
from repro.core.status import RunOutcome
from repro.telemetry import MFlib, SNMPPoller
from repro.testbed import FederationBuilder, TestbedAPI
from repro.testbed.slice_model import NodeRequest, SliceRequest
from repro.traffic.workloads import TrafficOrchestrator


def small_plan(**overrides):
    defaults = dict(sample_duration=2, sample_interval=10, samples_per_run=2,
                    runs_per_cycle=1, cycles=2)
    defaults.update(overrides)
    return SamplingPlan(**defaults)


@pytest.fixture()
def world(tmp_path):
    federation = FederationBuilder(seed=42).build(site_names=["STAR", "MICH"])
    api = TestbedAPI(federation)
    poller = SNMPPoller(federation, interval=5.0)
    poller.start()
    orchestrator = TrafficOrchestrator(federation, seed=7, scale=0.02)
    orchestrator.setup()
    orchestrator.generate_window(0.0, 250.0)
    config = PatchworkConfig(output_dir=tmp_path, plan=small_plan(),
                             desired_instances=2)
    return federation, api, poller, config


def run_instance(federation, api, poller, config, site="STAR", **kwargs):
    instance = PatchworkInstance(
        api=api, mflib=MFlib(poller.store), config=config, site=site,
        poller=poller, rng=np.random.default_rng(0), **kwargs)
    instance.start()
    deadline = federation.sim.now + 10_000
    while not instance.finished and federation.sim.now < deadline:
        if not federation.sim.step():
            break
    return instance


class TestSuccessPath:
    def test_full_run_succeeds(self, world):
        federation, api, poller, config = world
        instance = run_instance(federation, api, poller, config)
        result = instance.result
        assert result.outcome is RunOutcome.SUCCESS
        # 2 cycles x 1 run x 2 samples x 4 slots (2 NICs x 2 ports).
        assert len(result.samples) == 16
        assert result.log is not None

    def test_pcaps_written(self, world):
        federation, api, poller, config = world
        instance = run_instance(federation, api, poller, config)
        paths = instance.result.pcap_paths
        assert len(paths) == 16
        assert all(p.exists() for p in paths)
        assert any(p.stat().st_size > 24 for p in paths)

    def test_resources_returned_after_run(self, world):
        federation, api, poller, config = world
        before = api.available_resources("STAR")
        run_instance(federation, api, poller, config)
        after = api.available_resources("STAR")
        assert after == before

    def test_mirrors_cleaned_up(self, world):
        federation, api, poller, config = world
        run_instance(federation, api, poller, config)
        assert federation.site("STAR").switch.mirrors == {}

    def test_port_cycling_changes_ports(self, world, tmp_path):
        # The round-robin selector guarantees the mirrors move between
        # cycles (busiest-bias may legitimately revisit a small pool of
        # busy ports; its rotation rules are unit-tested separately).
        federation, api, poller, _config = world
        config = PatchworkConfig(output_dir=tmp_path / "cycle",
                                 plan=small_plan(), desired_instances=2,
                                 selector="all")
        instance = run_instance(federation, api, poller, config)
        by_cycle = {}
        for sample in instance.result.samples:
            by_cycle.setdefault(sample.cycle, set()).add(sample.mirrored_port)
        assert len(by_cycle) == 2
        assert by_cycle[0] != by_cycle[1]

    def test_busiest_bias_targets_busy_ports(self, world):
        """With working telemetry, the default heuristic points mirrors
        at ports that actually carry traffic."""
        federation, api, poller, config = world
        instance = run_instance(federation, api, poller, config)
        assert instance.result.bytes_captured > 0
        seen_ports = {s.mirrored_port for s in instance.result.samples}
        busy = {r.port_id for r in instance.mflib.busiest_ports(
            "STAR", federation.sim.now - 600, federation.sim.now)
            if r.total_bps > 1000}
        assert seen_ports & busy

    def test_congestion_checked_each_sample(self, world):
        federation, api, poller, config = world
        instance = run_instance(federation, api, poller, config)
        assert all(s.congestion is not None for s in instance.result.samples)

    def test_samples_capture_traffic(self, world):
        federation, api, poller, config = world
        instance = run_instance(federation, api, poller, config)
        assert instance.result.bytes_captured > 0


class TestDegradedAndFailed:
    def drain(self, api, site, leave):
        free = api.available_resources(site).dedicated_nics
        take = int(free) - leave
        if take > 0:
            api.create_slice(SliceRequest(site=site, nodes=[
                NodeRequest(name=f"u{i}") for i in range(take)]))

    def test_degraded_on_shortage(self, world):
        federation, api, poller, config = world
        self.drain(api, "STAR", leave=1)
        instance = run_instance(federation, api, poller, config)
        assert instance.result.outcome is RunOutcome.DEGRADED
        assert instance.acquisition.backoffs == 1
        # Degraded still profiles: 2 slots instead of 4.
        assert len(instance.result.samples) == 8

    def test_failed_when_no_nics(self, world):
        federation, api, poller, config = world
        self.drain(api, "STAR", leave=0)
        instance = run_instance(federation, api, poller, config)
        assert instance.result.outcome is RunOutcome.FAILED
        assert instance.result.samples == []

    def test_failed_on_outage(self, world):
        federation, api, poller, config = world
        federation.faults.add_outage(federation.sim.now,
                                     federation.sim.now + 1e6)
        instance = run_instance(federation, api, poller, config)
        assert instance.result.outcome is RunOutcome.FAILED

    def test_crash_gives_incomplete(self, world):
        federation, api, poller, config = world
        instance = run_instance(federation, api, poller, config,
                                crash_probability=1.0)
        assert instance.result.outcome is RunOutcome.INCOMPLETE
        # Resources are still yielded back on crash.
        assert federation.site("STAR").switch.mirrors == {}

    def test_abort_is_idempotent(self, world):
        federation, api, poller, config = world
        instance = run_instance(federation, api, poller, config)
        instance.abort("late abort")  # already finished: no effect
        assert instance.result.outcome is RunOutcome.SUCCESS


class TestSelectors:
    def test_uplinks_only_selector(self, world, tmp_path):
        federation, api, poller, _config = world
        config = PatchworkConfig(output_dir=tmp_path / "up", plan=small_plan(),
                                 desired_instances=1, selector="uplinks")
        instance = run_instance(federation, api, poller, config)
        uplinks = {p.port_id for p in federation.site("STAR").switch.uplinks()}
        assert instance.result.samples
        assert all(s.mirrored_port in uplinks for s in instance.result.samples)

    def test_fixed_selector(self, world, tmp_path):
        federation, api, poller, _config = world
        # Target a shared-NIC port: dedicated-NIC ports may become the
        # instance's own mirror destinations (and are then ineligible).
        site = federation.site("STAR")
        target = site.switch_port_for(site.shared_nics[0].ports[0])
        config = PatchworkConfig(output_dir=tmp_path / "fx", plan=small_plan(),
                                 desired_instances=1, selector="fixed",
                                 fixed_ports=[target])
        instance = run_instance(federation, api, poller, config)
        assert instance.result.samples
        assert all(s.mirrored_port == target for s in instance.result.samples)

    def test_on_done_callback(self, world):
        federation, api, poller, config = world
        done = []
        instance = PatchworkInstance(
            api=api, mflib=MFlib(poller.store), config=config, site="STAR",
            poller=poller, rng=np.random.default_rng(0),
            on_done=lambda inst: done.append(inst.site))
        instance.start()
        while not instance.finished and federation.sim.step():
            pass
        assert done == ["STAR"]
