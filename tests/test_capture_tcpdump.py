"""Tests for the tcpdump capture model (Section 8.1.2)."""

import pytest

from repro.capture.tcpdump import TcpdumpModel


class TestCapacity:
    def test_paper_anchor_1500B(self):
        """Loss-free until ~8.5 Gbps for 1500 B frames."""
        model = TcpdumpModel()
        max_rate = model.max_lossless_rate_bps(1500)
        assert 8.0e9 <= max_rate <= 9.2e9

    def test_smaller_frames_lower_rate(self):
        model = TcpdumpModel()
        assert model.max_lossless_rate_bps(128) < model.max_lossless_rate_bps(1500)

    def test_capacity_pps_roughly_constant(self):
        # Kernel cost is per-packet dominated under truncation.
        model = TcpdumpModel(snaplen=64)
        assert model.capacity_pps(128) == pytest.approx(model.capacity_pps(9000),
                                                        rel=0.05)

    def test_larger_snaplen_costs_more(self):
        small = TcpdumpModel(snaplen=64)
        large = TcpdumpModel(snaplen=1500)
        assert large.capacity_pps(1500) < small.capacity_pps(1500)

    def test_buffer_parsing(self):
        assert TcpdumpModel(buffer_bytes="32MB").buffer_bytes == 32_000_000


class TestConstantLoad:
    def test_below_capacity_lossless(self):
        result = TcpdumpModel().offer_constant_load(5e9, 1500)
        assert result.lossless
        assert result.captured_pps == result.offered_pps

    def test_above_capacity_loses(self):
        result = TcpdumpModel().offer_constant_load(20e9, 1500, duration=10.0)
        assert result.loss_fraction > 0.3

    def test_buffer_absorbs_short_overload(self):
        model = TcpdumpModel()
        short = model.offer_constant_load(9.5e9, 1500, duration=0.01)
        long = model.offer_constant_load(9.5e9, 1500, duration=60.0)
        assert short.loss_fraction < long.loss_fraction

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            TcpdumpModel().offer_constant_load(0, 1500)


class TestOnlinePath:
    def test_slow_arrivals_all_captured(self):
        model = TcpdumpModel()
        for i in range(100):
            assert model.on_frame(1500, now=i * 0.001)
        assert model.captured == 100
        assert model.dropped == 0

    def test_burst_beyond_buffer_drops(self):
        model = TcpdumpModel(buffer_bytes=10_000, snaplen=64)
        results = [model.on_frame(1500, now=0.0) for _ in range(200)]
        assert not all(results)
        assert model.dropped > 0
        assert model.captured + model.dropped == model.received == 200

    def test_backlog_drains_over_time(self):
        model = TcpdumpModel(buffer_bytes=10_000, snaplen=64)
        for _ in range(200):
            model.on_frame(1500, now=0.0)
        assert model.on_frame(1500, now=1.0)  # a second later: space again

    def test_time_must_not_go_backwards(self):
        model = TcpdumpModel()
        model.on_frame(100, now=1.0)
        with pytest.raises(ValueError):
            model.on_frame(100, now=0.5)

    def test_reset(self):
        model = TcpdumpModel()
        model.on_frame(100, now=1.0)
        model.reset()
        assert model.received == 0
        model.on_frame(100, now=0.1)  # clock restarted
