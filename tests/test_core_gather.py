"""Tests for the gathering phase (compression + verification)."""

import tarfile

import pytest

from repro.core.gather import (
    extract_archive, gather_bundle, gather_site, verify_archive,
)


@pytest.fixture()
def site_dir(tmp_path):
    d = tmp_path / "STAR"
    d.mkdir()
    (d / "c0_r0_s0.pcap").write_bytes(b"\xa1\xb2\xc3\xd4" + b"\x00" * 5000)
    (d / "c0_r0_s1.pcap").write_bytes(b"\xa1\xb2\xc3\xd4" + b"\x01" * 3000)
    return d


class TestGatherSite:
    def test_archive_created_with_manifest(self, site_dir, tmp_path):
        gathered = gather_site("STAR", site_dir, tmp_path / "gathered",
                               log_text="# log\nhello\n")
        assert gathered.archive_path.exists()
        assert gathered.files == 3  # 2 pcaps + log
        with tarfile.open(gathered.archive_path) as archive:
            names = archive.getnames()
        assert "STAR/MANIFEST.json" in names
        assert "STAR/instance.log" in names
        assert "STAR/c0_r0_s0.pcap" in names

    def test_compression_shrinks_pcaps(self, site_dir, tmp_path):
        gathered = gather_site("STAR", site_dir, tmp_path / "g")
        # Highly compressible filler: the archive must be much smaller.
        assert gathered.compressed_bytes < gathered.raw_bytes
        assert gathered.compression_ratio > 2.0

    def test_verify_ok(self, site_dir, tmp_path):
        gathered = gather_site("STAR", site_dir, tmp_path / "g")
        assert verify_archive(gathered.archive_path)

    def test_verify_detects_corruption(self, site_dir, tmp_path):
        gathered = gather_site("STAR", site_dir, tmp_path / "g",
                               log_text="x")
        # Rebuild the archive with one file's bytes flipped.
        import io
        import json
        corrupted = tmp_path / "corrupt.tar.gz"
        with tarfile.open(gathered.archive_path) as src, \
                tarfile.open(corrupted, "w:gz") as dst:
            for member in src.getmembers():
                data = src.extractfile(member).read()
                if member.name.endswith("s0.pcap"):
                    data = b"\xff" + data[1:]
                info = tarfile.TarInfo(member.name)
                info.size = len(data)
                dst.addfile(info, io.BytesIO(data))
        assert not verify_archive(corrupted)

    def test_extract_round_trip(self, site_dir, tmp_path):
        gathered = gather_site("STAR", site_dir, tmp_path / "g",
                               log_text="the log")
        extracted = extract_archive(gathered.archive_path, tmp_path / "x")
        names = {p.name for p in extracted}
        assert {"c0_r0_s0.pcap", "c0_r0_s1.pcap", "instance.log",
                "MANIFEST.json"} <= names
        pcap = next(p for p in extracted if p.name == "c0_r0_s0.pcap")
        assert pcap.read_bytes() == (site_dir / "c0_r0_s0.pcap").read_bytes()


class TestGatherBundle:
    def test_gather_full_profile(self, profiled_bundle_and_pipeline, tmp_path):
        bundle, _pipeline, _report = profiled_bundle_and_pipeline
        gathered = gather_bundle(bundle, tmp_path / "gathered")
        profiled = [s for s, r in bundle.results.items() if r.pcap_paths]
        assert len(gathered) == len(profiled)
        for site_bundle in gathered:
            assert verify_archive(site_bundle.archive_path)
            assert site_bundle.compression_ratio > 1.0
