"""Tests for the gathering phase (compression + verification)."""

import tarfile

import pytest

from repro.core.gather import (
    extract_archive, gather_bundle, gather_site, verify_archive,
)


@pytest.fixture()
def site_dir(tmp_path):
    d = tmp_path / "STAR"
    d.mkdir()
    (d / "c0_r0_s0.pcap").write_bytes(b"\xa1\xb2\xc3\xd4" + b"\x00" * 5000)
    (d / "c0_r0_s1.pcap").write_bytes(b"\xa1\xb2\xc3\xd4" + b"\x01" * 3000)
    return d


class TestGatherSite:
    def test_archive_created_with_manifest(self, site_dir, tmp_path):
        gathered = gather_site("STAR", site_dir, tmp_path / "gathered",
                               log_text="# log\nhello\n")
        assert gathered.archive_path.exists()
        assert gathered.files == 3  # 2 pcaps + log
        with tarfile.open(gathered.archive_path) as archive:
            names = archive.getnames()
        assert "STAR/MANIFEST.json" in names
        assert "STAR/instance.log" in names
        assert "STAR/c0_r0_s0.pcap" in names

    def test_compression_shrinks_pcaps(self, site_dir, tmp_path):
        gathered = gather_site("STAR", site_dir, tmp_path / "g")
        # Highly compressible filler: the archive must be much smaller.
        assert gathered.compressed_bytes < gathered.raw_bytes
        assert gathered.compression_ratio > 2.0

    def test_verify_ok(self, site_dir, tmp_path):
        gathered = gather_site("STAR", site_dir, tmp_path / "g")
        assert verify_archive(gathered.archive_path)

    def test_verify_detects_corruption(self, site_dir, tmp_path):
        gathered = gather_site("STAR", site_dir, tmp_path / "g",
                               log_text="x")
        # Rebuild the archive with one file's bytes flipped.
        import io
        corrupted = tmp_path / "corrupt.tar.gz"
        with tarfile.open(gathered.archive_path) as src, \
                tarfile.open(corrupted, "w:gz") as dst:
            for member in src.getmembers():
                data = src.extractfile(member).read()
                if member.name.endswith("s0.pcap"):
                    data = b"\xff" + data[1:]
                info = tarfile.TarInfo(member.name)
                info.size = len(data)
                dst.addfile(info, io.BytesIO(data))
        assert not verify_archive(corrupted)

    def test_extract_round_trip(self, site_dir, tmp_path):
        gathered = gather_site("STAR", site_dir, tmp_path / "g",
                               log_text="the log")
        extracted = extract_archive(gathered.archive_path, tmp_path / "x")
        names = {p.name for p in extracted}
        assert {"c0_r0_s0.pcap", "c0_r0_s1.pcap", "instance.log",
                "MANIFEST.json"} <= names
        pcap = next(p for p in extracted if p.name == "c0_r0_s0.pcap")
        assert pcap.read_bytes() == (site_dir / "c0_r0_s0.pcap").read_bytes()


class TestGatherBundle:
    def test_gather_full_profile(self, profiled_bundle_and_pipeline, tmp_path):
        bundle, _pipeline, _report = profiled_bundle_and_pipeline
        gathered = gather_bundle(bundle, tmp_path / "gathered")
        profiled = [s for s, r in bundle.results.items() if r.pcap_paths]
        assert len(gathered) == len(profiled)
        for site_bundle in gathered:
            assert verify_archive(site_bundle.archive_path)
            assert site_bundle.compression_ratio > 1.0


def _rebuild(src_path, dst_path, mutate):
    """Copy an archive member-by-member, letting ``mutate`` rewrite the
    (name, data) stream; returns the path to the rebuilt archive."""
    import io
    members = []
    with tarfile.open(src_path) as src:
        for member in src.getmembers():
            members.append((member.name, src.extractfile(member).read()))
    with tarfile.open(dst_path, "w:gz") as dst:
        for name, data in mutate(members):
            info = tarfile.TarInfo(name)
            info.size = len(data)
            dst.addfile(info, io.BytesIO(data))
    return dst_path


class TestVerifyManifestShadowing:
    """Regression tests for the endswith-manifest bug: a captured file
    whose *name* merely ends in MANIFEST.json used to shadow the real
    manifest, so a crafted nested decoy could vacuously pass (or fail)
    verification of untouched captures."""

    def test_nested_manifest_named_capture_is_verified_as_content(
            self, site_dir, tmp_path):
        sub = site_dir / "sub"
        sub.mkdir()
        (sub / "MANIFEST.json").write_bytes(b"not a manifest, just a capture")
        gathered = gather_site("STAR", site_dir, tmp_path / "g")
        assert verify_archive(gathered.archive_path)
        # Corrupt the decoy: it must be caught like any other member.
        bad = _rebuild(
            gathered.archive_path, tmp_path / "bad.tar.gz",
            lambda members: [(n, b"tampered" if n == "STAR/sub/MANIFEST.json"
                              else d) for n, d in members])
        assert not verify_archive(bad)

    def test_empty_decoy_manifest_cannot_vacuously_pass(
            self, site_dir, tmp_path):
        """The old code picked the first endswith match; an empty-dict
        ``sub/MANIFEST.json`` then verified *nothing* and returned True."""
        sub = site_dir / "sub"
        sub.mkdir()
        (sub / "MANIFEST.json").write_bytes(b"{}")
        gathered = gather_site("STAR", site_dir, tmp_path / "g")
        tampered = _rebuild(
            gathered.archive_path, tmp_path / "tampered.tar.gz",
            lambda members: [(n, b"\xff" + d[1:] if n.endswith("s0.pcap")
                              else d) for n, d in members])
        assert not verify_archive(tampered)

    def test_extra_member_fails(self, site_dir, tmp_path):
        gathered = gather_site("STAR", site_dir, tmp_path / "g")
        extra = _rebuild(
            gathered.archive_path, tmp_path / "extra.tar.gz",
            lambda members: members + [("STAR/smuggled.pcap", b"oops")])
        assert not verify_archive(extra)

    def test_missing_member_fails(self, site_dir, tmp_path):
        gathered = gather_site("STAR", site_dir, tmp_path / "g")
        pruned = _rebuild(
            gathered.archive_path, tmp_path / "pruned.tar.gz",
            lambda members: [(n, d) for n, d in members
                             if not n.endswith("s1.pcap")])
        assert not verify_archive(pruned)

    def test_undecodable_manifest_fails(self, site_dir, tmp_path):
        gathered = gather_site("STAR", site_dir, tmp_path / "g")
        garbled = _rebuild(
            gathered.archive_path, tmp_path / "garbled.tar.gz",
            lambda members: [(n, b"\xff\xfe not json" if n.endswith(
                "STAR/MANIFEST.json") else d) for n, d in members])
        assert not verify_archive(garbled)


class TestGatherCrashSafety:
    """Satellite 3: the archive lands via temp-file + os.replace, so a
    crash mid-gather leaves no torn .tar.gz behind."""

    def _crash_at_every_op(self, site_dir, out_dir):
        from repro.testbed.chaos import CrashingIO
        from repro.util.atomio import FileIO, SimulatedCrash
        from repro.util.rng import derive_rng

        probe = FileIO()
        gather_site("STAR", site_dir, out_dir, log_text="x", file_io=probe)
        assert probe.ops > 0, "gather must route writes through the IO seam"
        for crash_at in range(1, probe.ops + 1):
            yield crash_at, CrashingIO(crash_at, derive_rng(1, f"g{crash_at}")), \
                SimulatedCrash

    def test_crash_leaves_no_torn_archive(self, site_dir, tmp_path):
        for crash_at, crashing_io, SimulatedCrash in self._crash_at_every_op(
                site_dir, tmp_path / "probe"):
            out_dir = tmp_path / f"crash{crash_at}"
            with pytest.raises(SimulatedCrash):
                gather_site("STAR", site_dir, out_dir,
                            log_text="x", file_io=crashing_io)
            archive_path = out_dir / "STAR.tar.gz"
            if archive_path.exists():
                # The replace landed: the archive must be whole.
                assert verify_archive(archive_path), \
                    f"torn archive after crash at op {crash_at}"

    def test_crash_preserves_previous_archive(self, site_dir, tmp_path):
        from repro.testbed.chaos import CrashingIO
        from repro.util.atomio import SimulatedCrash
        from repro.util.rng import derive_rng

        out_dir = tmp_path / "g"
        first = gather_site("STAR", site_dir, out_dir, log_text="v1")
        before = first.archive_path.read_bytes()
        (site_dir / "c0_r0_s2.pcap").write_bytes(b"\xa1\xb2\xc3\xd4" + b"\x02" * 100)
        crashing_io = CrashingIO(1, derive_rng(2, "gather"), mode="pre-replace")
        with pytest.raises(SimulatedCrash):
            gather_site("STAR", site_dir, out_dir,
                        log_text="v2", file_io=crashing_io)
        # Old complete archive still in place, still verifiable.
        assert first.archive_path.read_bytes() == before
        assert verify_archive(first.archive_path)
