"""Tests for the DPDK capture model (Tables 1-2)."""

import pytest

from repro.capture.dpdk import (
    DpdkCaptureModel, MAX_WORKER_CORES, OfferedLoad,
)
from repro.capture.storage import PageCacheModel


class TestCapacityModel:
    def test_more_cores_more_pps(self):
        small = DpdkCaptureModel(cores=2, truncation=200)
        large = DpdkCaptureModel(cores=10, truncation=200)
        assert large.capacity_pps() > small.capacity_pps()

    def test_sublinear_scaling(self):
        model = DpdkCaptureModel(truncation=64)
        assert model.capacity_pps(10) < 10 * model.capacity_pps(1)

    def test_smaller_truncation_faster(self):
        t64 = DpdkCaptureModel(cores=5, truncation=64)
        t200 = DpdkCaptureModel(cores=5, truncation=200)
        assert t64.capacity_pps() > t200.capacity_pps()

    def test_validation(self):
        with pytest.raises(ValueError):
            DpdkCaptureModel(cores=0)
        with pytest.raises(ValueError):
            DpdkCaptureModel(rx_queue_depth=0)


class TestTableRows:
    """The published rows of Tables 1 and 2, as shape assertions."""

    @pytest.mark.parametrize("frame,rate_gbps,paper_cores", [
        (1514, 100, 5), (1024, 100, 10)])
    def test_table1_100g_rows(self, frame, rate_gbps, paper_cores):
        load = OfferedLoad(rate_gbps * 1e9, frame)
        cores = DpdkCaptureModel(truncation=200).min_cores_for(load)
        assert cores is not None
        assert abs(cores - paper_cores) <= 1

    @pytest.mark.parametrize("frame,rate_gbps,paper_cores", [
        (1514, 100, 3), (1024, 100, 5)])
    def test_table2_100g_rows(self, frame, rate_gbps, paper_cores):
        load = OfferedLoad(rate_gbps * 1e9, frame)
        cores = DpdkCaptureModel(truncation=64).min_cores_for(load)
        assert cores is not None
        assert abs(cores - paper_cores) <= 1

    def test_table1_512B_tops_out_near_60g(self):
        model = DpdkCaptureModel(cores=MAX_WORKER_CORES, truncation=200)
        max_rate = model.max_rate_bps(512)
        assert 55e9 <= max_rate <= 72e9  # paper: 60 Gbps

    def test_table1_128B_tops_out_near_15g(self):
        model = DpdkCaptureModel(cores=MAX_WORKER_CORES, truncation=200)
        assert 13e9 <= model.max_rate_bps(128) <= 19e9  # paper: 15 Gbps

    def test_table2_512B_reaches_100g(self):
        load = OfferedLoad(100e9, 512)
        cores = DpdkCaptureModel(truncation=64).min_cores_for(load)
        assert cores is not None and cores <= MAX_WORKER_CORES

    def test_table2_128B_tops_out_near_28g(self):
        model = DpdkCaptureModel(cores=MAX_WORKER_CORES, truncation=64)
        assert 25e9 <= model.max_rate_bps(128) <= 33e9  # paper: 28 Gbps

    def test_64B_needs_fewer_cores_than_200B(self):
        """Table 2's headline: truncating harder needs fewer cores."""
        for frame in (1514, 1024):
            load = OfferedLoad(100e9, frame)
            c64 = DpdkCaptureModel(truncation=64).min_cores_for(load)
            c200 = DpdkCaptureModel(truncation=200).min_cores_for(load)
            assert c64 < c200

    def test_published_operating_points_lose_under_1_percent(self):
        rows = [
            (200, 1514, 100e9, 5), (200, 1024, 100e9, 10),
            (200, 512, 60e9, 15), (200, 128, 15e9, 15),
            (64, 1514, 100e9, 3), (64, 1024, 100e9, 5),
            (64, 512, 100e9, 15), (64, 128, 28e9, 15),
        ]
        for trunc, frame, rate, cores in rows:
            result = DpdkCaptureModel(cores=cores, truncation=trunc).offer(
                OfferedLoad(rate, frame))
            assert result.loss_percent < 1.0, (trunc, frame)


class TestLossModel:
    def test_overload_loses_proportionally(self):
        model = DpdkCaptureModel(cores=1, truncation=200)
        result = model.offer(OfferedLoad(100e9, 128))
        assert result.loss_percent > 50

    def test_shallow_rx_queue_increases_residue(self):
        load = OfferedLoad(80e9, 1514)
        deep = DpdkCaptureModel(cores=10, truncation=200, rx_queue_depth=4096)
        shallow = DpdkCaptureModel(cores=10, truncation=200, rx_queue_depth=256)
        assert shallow.offer(load).loss_percent > deep.offer(load).loss_percent

    def test_storage_throttle_adds_loss(self):
        # A disk slower than the pcap write rate: the writer stalls once
        # the cache crosses the throttle midpoint, and frames are lost.
        storage = PageCacheModel(dirty_background_ratio=10, dirty_ratio=20,
                                 flush_rate_bps=0.8e9 * 8)
        with_storage = DpdkCaptureModel(cores=10, truncation=200, storage=storage)
        without = DpdkCaptureModel(cores=10, truncation=200)
        long_load = OfferedLoad(100e9, 1514, duration=120.0)
        throttled = with_storage.offer(long_load)
        clean = without.offer(long_load)
        assert throttled.throttled
        assert throttled.loss_percent > clean.loss_percent + 10

    def test_fast_disk_keeps_up(self):
        # When write-back outpaces the pcap writer there is no stall.
        storage = PageCacheModel(dirty_background_ratio=10, dirty_ratio=20)
        model = DpdkCaptureModel(cores=10, truncation=200, storage=storage)
        result = model.offer(OfferedLoad(100e9, 1514, duration=120.0))
        assert result.loss_percent < 1.0

    def test_loss_is_deterministic_per_seed(self):
        load = OfferedLoad(100e9, 1514)
        a = DpdkCaptureModel(cores=5, truncation=200, seed=1).offer(load)
        b = DpdkCaptureModel(cores=5, truncation=200, seed=1).offer(load)
        assert a.loss_percent == b.loss_percent


class TestOnlinePath:
    def test_captures_at_simulation_rates(self):
        model = DpdkCaptureModel(cores=2, truncation=200)
        for i in range(1000):
            assert model.on_frame(1514, now=i * 1e-5)
        assert model.dropped == 0

    def test_queue_overflow(self):
        model = DpdkCaptureModel(cores=1, truncation=200, rx_queue_depth=64)
        results = [model.on_frame(1514, now=0.0) for _ in range(200)]
        assert not all(results)

    def test_reset(self):
        model = DpdkCaptureModel()
        model.on_frame(100, now=5.0)
        model.reset()
        assert model.received == 0


class TestMinCores:
    def test_impossible_load_returns_none(self):
        load = OfferedLoad(100e9, 128)  # 97.7 Mpps: beyond any core count
        assert DpdkCaptureModel(truncation=200).min_cores_for(load) is None

    def test_result_properties(self):
        result = DpdkCaptureModel(cores=5, truncation=200).offer(
            OfferedLoad(50e9, 1514))
        assert result.acceptable
        assert result.achieved_rate_bps <= result.offered.rate_bps
        assert result.offered.frames > 0
