"""Tests for resource-vector arithmetic."""

import pytest

from repro.testbed.resources import ResourceCapacity


class TestArithmetic:
    def test_add(self):
        a = ResourceCapacity(cores=2, ram_gb=8, dedicated_nics=1)
        b = ResourceCapacity(cores=4, ram_gb=16, fpga_nics=1)
        total = a + b
        assert total.cores == 6
        assert total.ram_gb == 24
        assert total.dedicated_nics == 1
        assert total.fpga_nics == 1

    def test_sub(self):
        a = ResourceCapacity(cores=10, ram_gb=100)
        b = ResourceCapacity(cores=3, ram_gb=40)
        diff = a - b
        assert diff.cores == 7 and diff.ram_gb == 60

    def test_mul(self):
        doubled = ResourceCapacity(cores=2, disk_gb=100) * 2
        assert doubled.cores == 4 and doubled.disk_gb == 200

    def test_immutable(self):
        a = ResourceCapacity(cores=1)
        with pytest.raises(Exception):
            a.cores = 5


class TestFitting:
    def test_fits_within(self):
        need = ResourceCapacity(cores=2, ram_gb=8, disk_gb=100, dedicated_nics=1)
        have = ResourceCapacity(cores=64, ram_gb=512, disk_gb=10000, dedicated_nics=4)
        assert need.fits_within(have)

    def test_does_not_fit(self):
        need = ResourceCapacity(dedicated_nics=3)
        have = ResourceCapacity(cores=100, ram_gb=100, disk_gb=100, dedicated_nics=2)
        assert not need.fits_within(have)

    def test_first_shortfall_reports_dimension(self):
        need = ResourceCapacity(cores=2, dedicated_nics=5)
        have = ResourceCapacity(cores=64, ram_gb=1, dedicated_nics=2)
        shortfall = need.first_shortfall(have)
        assert shortfall == ("dedicated_nics", 5, 2)

    def test_first_shortfall_none_when_fits(self):
        need = ResourceCapacity(cores=1)
        have = ResourceCapacity(cores=1)
        assert need.first_shortfall(have) is None

    def test_first_shortfall_field_order(self):
        # cores comes before dedicated_nics in field order.
        need = ResourceCapacity(cores=9, dedicated_nics=9)
        have = ResourceCapacity()
        assert need.first_shortfall(have)[0] == "cores"

    def test_nonnegative(self):
        assert ResourceCapacity().is_nonnegative()
        assert not (ResourceCapacity() - ResourceCapacity(cores=1)).is_nonnegative()


class TestViews:
    def test_as_dict(self):
        d = ResourceCapacity(cores=2, shared_nic_slots=3).as_dict()
        assert d["cores"] == 2
        assert d["shared_nic_slots"] == 3
        assert set(d) == {"cores", "ram_gb", "disk_gb", "dedicated_nics",
                          "shared_nic_slots", "fpga_nics"}

    def test_components_ordered(self):
        names = [name for name, _v in ResourceCapacity().components()]
        assert names[0] == "cores"
        assert "fpga_nics" in names

    def test_zero(self):
        assert ResourceCapacity.zero() == ResourceCapacity()
