"""Tests for the congestion detector."""

import pytest

from repro.core.congestion import CongestionDetector
from repro.core.logs import InstanceLog
from repro.telemetry.mflib import MFlib
from repro.telemetry.timeseries import CounterStore


def store_with_total(tx_bps, rx_bps):
    store = CounterStore()
    for i, t in enumerate([0.0, 100.0, 200.0]):
        store.append("STAR", "p1", "tx_bytes", t, i * tx_bps / 8 * 100)
        store.append("STAR", "p1", "rx_bytes", t, i * rx_bps / 8 * 100)
        store.append("STAR", "p1", "tx_drops", t, 0)
        store.append("STAR", "p1", "rx_drops", t, 0)
    return store


class TestDetector:
    def test_overload_detected(self):
        """Tx 60 + Rx 60 > 100 Gbps destination: incomplete samples."""
        detector = CongestionDetector(MFlib(store_with_total(60e9, 60e9)))
        verdict = detector.check("STAR", "p1", 100e9, 0.0, 200.0)
        assert verdict.overloaded is True
        assert "overload likely" in verdict.describe()

    def test_fits_within_line_rate(self):
        detector = CongestionDetector(MFlib(store_with_total(40e9, 40e9)))
        verdict = detector.check("STAR", "p1", 100e9, 0.0, 200.0)
        assert verdict.overloaded is False

    def test_unanswerable_when_unpolled(self):
        detector = CongestionDetector(MFlib(CounterStore()))
        verdict = detector.check("STAR", "p1", 100e9, 0.0, 200.0)
        assert verdict.overloaded is None
        assert not verdict.answerable
        assert "unknown" in verdict.describe()

    def test_verdict_logged(self):
        log = InstanceLog("STAR", "t")
        detector = CongestionDetector(MFlib(store_with_total(60e9, 60e9)))
        detector.check("STAR", "p1", 100e9, 0.0, 200.0, log=log)
        events = log.of_kind("congestion")
        assert len(events) == 1
        assert events[0].level == "warning"

    def test_clean_verdict_logged_as_info(self):
        log = InstanceLog("STAR", "t")
        detector = CongestionDetector(MFlib(store_with_total(1e9, 1e9)))
        detector.check("STAR", "p1", 100e9, 0.0, 200.0, log=log)
        assert log.of_kind("congestion")[0].level == "info"

    def test_headroom_validated(self):
        with pytest.raises(ValueError):
            CongestionDetector(MFlib(CounterStore()), headroom=0)
