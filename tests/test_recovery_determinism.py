"""Determinism of recovery: same seed, same faults -> same outcomes.

The recovery layer adds randomness (jittered retry delays, restart
delays, re-dispatch timing), all drawn from the seeded RNG tree -- so
two identical runs must produce byte-identical run records.
"""

import pytest

from repro.core import (
    Coordinator,
    PatchworkConfig,
    RecoveryConfig,
    SamplingPlan,
)
from repro.telemetry import SNMPPoller
from repro.testbed import FederationBuilder, TestbedAPI

SITES = ["STAR", "MICH", "UTAH"]


def run_once(tmp_path, seed):
    federation = FederationBuilder(seed=42).build(site_names=SITES)
    api = TestbedAPI(federation)
    poller = SNMPPoller(federation, interval=30.0)
    poller.start()
    config = PatchworkConfig(
        output_dir=tmp_path,
        plan=SamplingPlan(sample_duration=2, sample_interval=10,
                          samples_per_run=2, runs_per_cycle=1, cycles=2),
        desired_instances=1,
        recovery=RecoveryConfig(enabled=True),
    )
    federation.faults.add_outage(0.0, 300.0, reason="incident",
                                 sites={"STAR"})
    coordinator = Coordinator(api, config, poller=poller, seed=seed)
    bundle = coordinator.run_profile(crash_probability=0.01)
    return [
        (r.site, r.outcome.value, r.reason, r.backoffs, r.instances,
         r.samples_taken, r.retries, r.breaker_opens, r.restarts,
         r.recovered, r.redispatched, round(r.started_at, 6))
        for r in bundle.run_records
    ], round(bundle.finished_at, 6)


@pytest.mark.parametrize("seed", [5, 17, 91])
def test_same_seed_reproduces_records(tmp_path, seed):
    first = run_once(tmp_path / "a", seed)
    second = run_once(tmp_path / "b", seed)
    assert first == second


def test_different_seeds_diverge(tmp_path):
    # Not a hard guarantee for every pair, but these seeds produce
    # different retry timing; identical output would mean the seed is
    # being ignored somewhere.
    _, end5 = run_once(tmp_path / "a", 5)
    _, end17 = run_once(tmp_path / "b", 17)
    assert end5 != end17
