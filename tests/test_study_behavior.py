"""Tests for the Fig 10 campaign driver (small-scale)."""

import pytest

from repro.core import PatchworkConfig, SamplingPlan
from repro.core.status import RunOutcome
from repro.study.behavior import run_campaign
from repro.testbed import FederationBuilder, TestbedAPI


@pytest.fixture(scope="module")
def campaign():
    federation = FederationBuilder(seed=42).build(
        site_names=["STAR", "MICH", "UTAH", "TACC", "NCSA", "WASH"])
    api = TestbedAPI(federation)
    config = PatchworkConfig(
        output_dir="/tmp/patchwork-campaign-test",
        plan=SamplingPlan(sample_duration=2, sample_interval=10,
                          samples_per_run=1, runs_per_cycle=1, cycles=1),
        desired_instances=2,
    )
    return run_campaign(
        api, config, occasions=5, seed=23,
        total_shortage_fraction=0.2, partial_shortage_fraction=0.2,
        outage_fraction=0.3, crash_probability=0.02,
    )


class TestCampaign:
    def test_all_site_occasions_recorded(self, campaign):
        assert len(campaign.records) == 5 * 6

    def test_majority_succeed(self, campaign):
        """Fig 10's headline: most runs profile their site."""
        assert 0.4 <= campaign.success_rate <= 1.0

    def test_failures_happen(self, campaign):
        fractions = campaign.fractions()
        assert fractions[RunOutcome.FAILED] > 0

    def test_fractions_sum_to_one(self, campaign):
        assert sum(campaign.fractions().values()) == pytest.approx(1.0)

    def test_summary_table(self, campaign):
        table = campaign.to_table()
        assert [row[0] for row in table.rows] == [
            "success", "degraded", "failed", "incomplete"]
        assert sum(row[1] for row in table.rows) == len(campaign.records)

    def test_timeline_table(self, campaign):
        table = campaign.timeline_table()
        assert len(table.rows) == 5
        for row in table.rows:
            assert sum(row[1:]) == 6  # every site accounted each occasion

    def test_resources_not_leaked(self, campaign):
        # After the campaign, competitors and Patchwork slices are gone;
        # if NICs leaked, later occasions would fail increasingly.
        by_occasion = {}
        for record in campaign.records:
            by_occasion.setdefault(record.started_at, []).append(record)
        occasions = [recs for _t, recs in sorted(by_occasion.items())]
        first_failures = sum(1 for r in occasions[0] if not r.profiled)
        last_failures = sum(1 for r in occasions[-1] if not r.profiled)
        assert last_failures <= first_failures + 3
