"""Tests for federation construction, routing, and the information model."""

import networkx as nx
import pytest

from repro.netsim.frame import Frame
from repro.packets.headers import mac_bytes
from repro.testbed.federation import (
    DEFAULT_SITE_NAMES, Federation, FederationBuilder, SiteProfile,
)
from repro.testbed.information_model import InformationModel


class TestBuilder:
    def test_default_build_has_30_sites(self):
        federation = FederationBuilder(seed=42).build()
        assert len(federation.sites) == 30
        assert set(federation.site_names()) == set(DEFAULT_SITE_NAMES)

    def test_build_is_deterministic(self):
        a = FederationBuilder(seed=1).build(site_names=["A", "B", "C"])
        b = FederationBuilder(seed=1).build(site_names=["A", "B", "C"])
        for name in ("A", "B", "C"):
            assert (a.site(name).total_resources()
                    == b.site(name).total_resources())

    def test_different_seeds_differ(self):
        a = FederationBuilder(seed=1).build()
        b = FederationBuilder(seed=2).build()
        assert any(
            a.site(n).total_resources() != b.site(n).total_resources()
            for n in a.site_names()
        )

    def test_topology_connected(self):
        federation = FederationBuilder(seed=42).build()
        assert nx.is_connected(federation.graph)

    def test_dedicated_nics_scarce(self):
        """The paper: each site usually has only around 2-6 dedicated NICs."""
        federation = FederationBuilder(seed=42).build()
        for name in federation.site_names():
            count = len(federation.site(name).dedicated_nics)
            assert 2 <= count <= 6

    def test_needs_two_sites(self):
        with pytest.raises(ValueError):
            FederationBuilder().build(site_names=["ALONE"])

    def test_duplicate_site_rejected(self):
        federation = Federation()
        profile = SiteProfile(name="X", workers=1)
        federation.add_site(profile.build(federation.sim))
        with pytest.raises(ValueError):
            federation.add_site(profile.build(federation.sim))

    def test_profiles_only_matches_build(self):
        builder = FederationBuilder(seed=9)
        profiles = builder.profiles_only(["A", "B", "C"])
        federation = FederationBuilder(seed=9).build(site_names=["A", "B", "C"])
        for profile in profiles:
            site = federation.site(profile.name)
            assert len(site.workers) == profile.workers
            assert len(site.dedicated_nics) == profile.dedicated_nics


class TestRouting:
    def test_uplink_port_toward_neighbor(self):
        federation = FederationBuilder(seed=42).build(site_names=["A", "B", "C"])
        port = federation.uplink_port_toward("A", "B")
        assert port in {p.port_id for p in federation.site("A").switch.uplinks()}

    def test_same_site_rejected(self):
        federation = FederationBuilder(seed=42).build(site_names=["A", "B"])
        with pytest.raises(ValueError):
            federation.uplink_port_toward("A", "A")

    def test_cross_site_delivery(self):
        federation = FederationBuilder(seed=42).build(site_names=["A", "B", "C"])
        site_b = federation.site("B")
        # Register an endpoint MAC at B on one of its downlinks.
        dst_mac = mac_bytes("02:00:00:00:00:99")
        downlink = site_b.switch.downlinks()[0]
        federation.register_endpoint(dst_mac, "B", downlink.port_id)
        received = []
        downlink.link.tx.connect(received.append)
        # Inject a frame at A addressed to the B endpoint.
        head = dst_mac + mac_bytes("02:00:00:00:00:01") + b"\x08\x00" + b"\x00" * 46
        frame = Frame(wire_len=500, head=head)
        site_a = federation.site("A")
        site_a.switch.downlinks()[0].link.rx.offer(frame)
        federation.sim.run()
        assert len(received) == 1


class TestInformationModel:
    def test_port_distribution_shape(self):
        """Fig 2's claims hold on the default build."""
        federation = FederationBuilder(seed=42).build()
        model = InformationModel(federation)
        counts = model.port_distribution()
        assert len(counts) == 30
        for count in counts:
            assert count.downlinks > count.uplinks
        uplinks = [c.uplinks for c in counts]
        # "Most sites have a similar number of uplinks": small spread,
        # nothing beyond single digits.
        assert max(uplinks) <= 8
        assert min(uplinks) >= 1

    def test_uplink_ratio_below_one(self):
        federation = FederationBuilder(seed=42).build()
        assert InformationModel(federation).uplink_downlink_ratio() < 0.5

    def test_site_resources_keys(self):
        federation = FederationBuilder(seed=42).build(site_names=["A", "B"])
        resources = InformationModel(federation).site_resources()
        assert set(resources) == {"A", "B"}
        assert resources["A"]["cores"] > 0

    def test_topology_copy_is_independent(self):
        federation = FederationBuilder(seed=42).build(site_names=["A", "B"])
        graph = InformationModel(federation).topology()
        graph.remove_node("A")
        assert "A" in federation.graph

    def test_diameter_and_capacity(self):
        federation = FederationBuilder(seed=42).build()
        model = InformationModel(federation)
        assert 1 <= model.diameter() <= 10
        assert model.inter_site_capacity_bps() > 0
