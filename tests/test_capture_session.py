"""Tests for online capture sessions (frames -> pcap files)."""

import numpy as np
import pytest

from repro.analysis.anonymize import Anonymizer
from repro.capture.session import CaptureMethod, CaptureSession
from repro.packets.pcap import PcapReader
from repro.testbed import FederationBuilder
from repro.traffic.endpoints import EndpointRegistry
from repro.traffic.flows import STANDARD_APPS, Flow


@pytest.fixture()
def world():
    federation = FederationBuilder(seed=42).build(site_names=["STAR", "MICH"])
    registry = EndpointRegistry(federation)
    a = registry.create("STAR")
    b = registry.create("STAR")
    return federation, a, b


def run_flow(federation, a, b, total=100_000):
    flow = Flow(sim=federation.sim, flow_id=1, src=a, dst=b,
                app=STANDARD_APPS["iperf-tcp"], total_bytes=total,
                rng=np.random.default_rng(0))
    flow.start()
    return flow


class TestSession:
    def test_captures_frames_to_pcap(self, world, tmp_path):
        federation, a, b = world
        path = tmp_path / "s.pcap"
        session = CaptureSession(federation.sim, b.nic_port, path, snaplen=200)
        session.start()
        run_flow(federation, a, b)
        federation.sim.run()
        stats = session.stop()
        assert stats.frames_captured > 0
        assert stats.frames_captured == stats.frames_seen  # slow traffic
        records = PcapReader(path).read_all()
        assert len(records) == stats.frames_captured
        assert all(len(r.data) <= 200 for r in records)
        assert any(r.orig_len > 1000 for r in records)

    def test_timestamps_are_simulation_time(self, world, tmp_path):
        federation, a, b = world
        path = tmp_path / "s.pcap"
        session = CaptureSession(federation.sim, b.nic_port, path)
        session.start()
        run_flow(federation, a, b)
        federation.sim.run()
        session.stop()
        times = [r.timestamp for r in PcapReader(path).read_all()]
        assert times == sorted(times)
        assert times[-1] <= federation.sim.now

    def test_stop_unsubscribes(self, world, tmp_path):
        federation, a, b = world
        session = CaptureSession(federation.sim, b.nic_port, tmp_path / "s.pcap")
        session.start()
        stats = session.stop()
        run_flow(federation, a, b)
        federation.sim.run()
        assert stats.frames_seen == 0

    def test_run_for_schedules_stop(self, world, tmp_path):
        federation, a, b = world
        session = CaptureSession(federation.sim, b.nic_port, tmp_path / "s.pcap")
        session.run_for(0.5)
        run_flow(federation, a, b, total=10**7)
        federation.sim.run(until=2.0)
        assert session.stats.ended_at == pytest.approx(0.5)

    def test_no_pcap_mode(self, world):
        federation, a, b = world
        session = CaptureSession(federation.sim, b.nic_port, None)
        session.start()
        run_flow(federation, a, b)
        federation.sim.run()
        stats = session.stop()
        assert stats.frames_captured > 0
        assert stats.pcap_path is None

    def test_double_start_rejected(self, world, tmp_path):
        federation, _a, b = world
        session = CaptureSession(federation.sim, b.nic_port, tmp_path / "s.pcap")
        session.start()
        with pytest.raises(RuntimeError):
            session.start()

    def test_bad_snaplen(self, world, tmp_path):
        federation, _a, b = world
        with pytest.raises(ValueError):
            CaptureSession(federation.sim, b.nic_port, tmp_path / "s.pcap",
                           snaplen=0)


class TestMethods:
    def test_dpdk_method(self, world, tmp_path):
        federation, a, b = world
        session = CaptureSession(federation.sim, b.nic_port,
                                 tmp_path / "d.pcap", method=CaptureMethod.DPDK)
        session.start()
        run_flow(federation, a, b)
        federation.sim.run()
        assert session.stop().frames_captured > 0

    def test_fpga_method_samples(self, world, tmp_path):
        from repro.capture.fpga import FpgaOffloadConfig
        federation, a, b = world
        session = CaptureSession(
            federation.sim, b.nic_port, tmp_path / "f.pcap",
            method=CaptureMethod.FPGA_DPDK,
            fpga_config=FpgaOffloadConfig(truncation=64, sample_one_in=2),
        )
        session.start()
        run_flow(federation, a, b)
        federation.sim.run()
        stats = session.stop()
        # Half the frames are sampled out by the card -- not counted as loss.
        assert stats.frames_captured < stats.frames_seen
        assert stats.frames_dropped == 0
        records = PcapReader(tmp_path / "f.pcap").read_all()
        assert all(len(r.data) <= 64 for r in records)

    def test_anonymizing_transform(self, world, tmp_path):
        federation, a, b = world
        anonymizer = Anonymizer(key=b"test-key")
        session = CaptureSession(federation.sim, b.nic_port,
                                 tmp_path / "a.pcap", snaplen=200,
                                 transform=anonymizer.transform)
        session.start()
        run_flow(federation, a, b)
        federation.sim.run()
        session.stop()
        from repro.analysis.dissect import Dissector
        records = PcapReader(tmp_path / "a.pcap").read_all()
        dissected = Dissector().dissect(records[0].data)
        ipv4 = dissected.first("ipv4")
        # Addresses were rewritten away from the registry's 10/8 scheme.
        assert ipv4 is not None
        assert ipv4.fields["src"] != a.ipv4 and ipv4.fields["src"] != b.ipv4


def burst_port():
    """A NIC port on a 100G link: bursts arrive ~80 ns apart, faster
    than either capture model can drain its backlog."""
    from repro.netsim.engine import Simulator
    from repro.netsim.frame import Frame
    from repro.netsim.link import DuplexLink
    from repro.testbed.nic import DedicatedNIC

    sim = Simulator()
    link = DuplexLink(sim, rate_bps=100e9)
    port = DedicatedNIC().ports[0]
    port.attach(link, "p1")

    def burst(count=500, size=1000):
        for _ in range(count):
            link.tx.offer(Frame(wire_len=size, head=b"\x00" * 64))

    return sim, port, burst


class TestDropCauseSplit:
    """frames_dropped is attributed: ring vs writer vs (separate) filter."""

    def test_writer_backpressure_counted(self, tmp_path):
        from repro.capture.tcpdump import TcpdumpModel
        sim, port, burst = burst_port()
        session = CaptureSession(
            sim, port, tmp_path / "w.pcap",
            tcpdump_model=TcpdumpModel(snaplen=200, buffer_bytes=800),
        )
        session.start()
        burst()
        sim.run()
        stats = session.stop()
        assert stats.writer_drops > 0
        assert stats.ring_drops == 0
        assert stats.frames_dropped == stats.writer_drops
        assert stats.frames_captured + stats.frames_dropped == \
            stats.frames_seen

    def test_nic_ring_overflow_counted(self, tmp_path):
        from repro.capture.dpdk import DpdkCaptureModel
        sim, port, burst = burst_port()
        session = CaptureSession(
            sim, port, tmp_path / "r.pcap",
            method=CaptureMethod.DPDK,
            dpdk_model=DpdkCaptureModel(cores=1, rx_queue_depth=1),
        )
        session.start()
        burst()
        sim.run()
        stats = session.stop()
        assert stats.ring_drops > 0
        assert stats.writer_drops == 0
        assert stats.frames_dropped == stats.ring_drops

    def test_fpga_filter_is_not_loss(self, world, tmp_path):
        from repro.capture.fpga import FpgaOffloadConfig
        federation, a, b = world
        session = CaptureSession(
            federation.sim, b.nic_port, tmp_path / "f.pcap",
            method=CaptureMethod.FPGA_DPDK,
            fpga_config=FpgaOffloadConfig(truncation=64, sample_one_in=2),
        )
        session.start()
        run_flow(federation, a, b)
        federation.sim.run()
        stats = session.stop()
        assert stats.frames_filtered > 0
        assert stats.frames_dropped == 0
        assert stats.frames_captured + stats.frames_filtered == \
            stats.frames_seen

    def test_split_sums_to_total(self):
        # Every path through _on_frame lands in exactly one bucket.
        from repro.capture.tcpdump import TcpdumpModel
        sim, port, burst = burst_port()
        session = CaptureSession(
            sim, port, None,
            tcpdump_model=TcpdumpModel(snaplen=100, buffer_bytes=400),
        )
        session.start()
        burst()
        sim.run()
        stats = session.stop()
        assert stats.frames_dropped > 0
        assert stats.frames_dropped == stats.ring_drops + stats.writer_drops
        assert stats.frames_seen == (stats.frames_captured +
                                     stats.frames_dropped +
                                     stats.frames_filtered)
