"""Tests for acap abstraction and serialization."""

import pytest

from repro.analysis.acap import (
    AcapFile, AcapRecord, abstract, digest_pcap, read_acap, write_acap,
)
from repro.analysis.dissect import Dissector
from repro.packets.builder import FrameBuilder, FrameSpec
from repro.packets.headers import (
    Ethernet, IPv4, MPLS, Payload, PseudoWireControlWord, TCP, TLSRecord, VLAN,
)
from repro.packets.pcap import PcapRecord, PcapWriter

E1, E2 = "02:00:00:00:00:01", "02:00:00:00:00:02"


def tls_frame():
    return FrameBuilder().build(FrameSpec([
        Ethernet(E1, E2), VLAN(301), MPLS(17000), MPLS(17001),
        PseudoWireControlWord(), Ethernet(E1, E2),
        IPv4("10.1.2.3", "10.4.5.6"), TCP(50000, 443), TLSRecord(),
        Payload(0)], target_size=1544))


def make_record(frame=None, ts=5.0):
    frame = frame or tls_frame()
    dissected = Dissector().dissect(frame[:200])
    return abstract(dissected, ts, len(frame), 200)


class TestAbstract:
    def test_fields_extracted(self):
        record = make_record()
        assert record.vlan_ids == (301,)
        assert record.mpls_labels == (17000, 17001)
        assert record.ip_version == 4
        assert record.src == "10.1.2.3"
        assert (record.sport, record.dport) == (50000, 443)
        assert record.wire_len == 1544
        assert record.captured_len == 200
        assert record.is_ip

    def test_stack_preserved(self):
        record = make_record()
        assert record.stack[:8] == ("eth", "vlan", "mpls", "mpls", "pw",
                                    "eth", "ipv4", "tcp")
        assert record.depth >= 8

    def test_non_ip_record(self):
        from repro.packets.headers import ARP
        frame = FrameBuilder().build(FrameSpec([Ethernet(E1, E2),
                                                ARP(E1, "10.0.0.1")]))
        dissected = Dissector().dissect(frame)
        record = abstract(dissected, 0.0, len(frame), len(frame))
        assert not record.is_ip
        assert record.ip_version == 0


class TestDigestPcap:
    def test_digest(self, tmp_path):
        path = tmp_path / "c.pcap"
        with PcapWriter(path, snaplen=200) as writer:
            for i in range(10):
                writer.write(PcapRecord(i * 0.1, tls_frame(), orig_len=1544))
        acap = digest_pcap(path)
        assert len(acap) == 10
        assert acap.records[0].wire_len == 1544
        assert acap.time_range == (pytest.approx(0.0), pytest.approx(0.9))
        assert "tls" in acap.protocols()

    def test_empty_pcap(self, tmp_path):
        path = tmp_path / "empty.pcap"
        PcapWriter(path).close()
        acap = digest_pcap(path)
        assert len(acap) == 0
        assert acap.time_range == (0.0, 0.0)


class TestSerialization:
    def test_round_trip(self, tmp_path):
        acap = AcapFile(source="test.pcap", records=[make_record(ts=1.25)])
        path = write_acap(acap, tmp_path / "x.acap")
        loaded = read_acap(path)
        assert loaded.source == "test.pcap"
        assert loaded.records == acap.records

    def test_round_trip_empty_fields(self, tmp_path):
        record = AcapRecord(timestamp=0.0, wire_len=60, captured_len=60,
                            stack=("eth",))
        path = write_acap(AcapFile("s", [record]), tmp_path / "y.acap")
        loaded = read_acap(path)
        assert loaded.records[0] == record

    def test_rejects_non_acap(self, tmp_path):
        path = tmp_path / "bogus.acap"
        path.write_text("not an acap\n")
        with pytest.raises(ValueError):
            read_acap(path)

    def test_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "short.acap"
        path.write_text("#acap v1 source=s\na\tb\n")
        with pytest.raises(ValueError):
            read_acap(path)

    def test_file_is_greppable_text(self, tmp_path):
        acap = AcapFile(source="s", records=[make_record()])
        path = write_acap(acap, tmp_path / "z.acap")
        text = path.read_text()
        assert "eth/vlan/mpls" in text
        assert "10.1.2.3" in text
