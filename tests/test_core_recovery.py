"""End-to-end tests for the fault-recovery layer: resilient control
plane, instance restart, and coordinator re-dispatch."""

import pytest

from repro.core import (
    Coordinator,
    PatchworkConfig,
    RecoveryConfig,
    SamplingPlan,
    recovery_summary,
)
from repro.core.instance import PatchworkInstance
from repro.core.retry import ResilientAPI
from repro.core.status import RunOutcome
from repro.telemetry import SNMPPoller
from repro.testbed import FederationBuilder, TestbedAPI
from repro.traffic.workloads import TrafficOrchestrator

pytestmark = pytest.mark.slow

SITES = ["STAR", "MICH", "UTAH"]


def small_plan():
    return SamplingPlan(sample_duration=2, sample_interval=10,
                        samples_per_run=2, runs_per_cycle=1, cycles=2)


def build_world(tmp_path, recovery, instances=1):
    federation = FederationBuilder(seed=42).build(site_names=SITES)
    api = TestbedAPI(federation)
    poller = SNMPPoller(federation, interval=20.0)
    poller.start()
    orchestrator = TrafficOrchestrator(federation, seed=7, scale=0.02)
    orchestrator.setup()
    orchestrator.generate_window(0.0, 120.0)
    config = PatchworkConfig(output_dir=tmp_path, plan=small_plan(),
                             desired_instances=instances, recovery=recovery)
    return federation, api, poller, config


class TestRetryThroughOutage:
    def test_recovery_off_fails_recovery_on_profiles(self, tmp_path):
        outcomes = {}
        for enabled in (False, True):
            federation, api, poller, config = build_world(
                tmp_path / str(enabled), RecoveryConfig(enabled=enabled))
            federation.faults.add_outage(0.0, 300.0, reason="incident",
                                         sites={"STAR"})
            coordinator = Coordinator(api, config, poller=poller)
            bundle = coordinator.run_profile()
            outcomes[enabled] = bundle.results["STAR"]
        assert outcomes[False].outcome is RunOutcome.FAILED
        assert outcomes[False].retries == 0
        recovered = outcomes[True]
        assert recovered.outcome in (RunOutcome.SUCCESS, RunOutcome.DEGRADED)
        assert recovered.retries > 0

    def test_retry_delays_are_jittered_sim_time(self, tmp_path):
        federation, api, poller, config = build_world(
            tmp_path, RecoveryConfig(enabled=True))
        federation.faults.add_outage(0.0, 300.0, reason="incident",
                                     sites={"STAR"})
        coordinator = Coordinator(api, config, poller=poller)
        bundle = coordinator.run_profile()
        log = bundle.results["STAR"].log
        retry_times = [e.time for e in log.events
                       if e.kind == "retry" and "retrying" in e.message]
        assert len(retry_times) >= 2
        # No two consecutive retries at the same sim timestamp.
        assert all(b > a for a, b in zip(retry_times, retry_times[1:]))
        # Each retry logged its jittered delay.
        delays = [e.data["delay"] for e in log.events
                  if e.kind == "retry" and "retrying" in e.message]
        assert len(set(delays)) == len(delays)

    def test_instance_wraps_api_once(self, tmp_path):
        _federation, api, poller, config = build_world(
            tmp_path, RecoveryConfig(enabled=True))
        coordinator = Coordinator(api, config, poller=poller)
        instance = PatchworkInstance(
            api=ResilientAPI(api), mflib=coordinator.mflib, config=config,
            site="STAR", poller=poller, rng=coordinator.seeds.rng("x"))
        assert isinstance(instance.api, ResilientAPI)
        assert not isinstance(instance.api.inner, ResilientAPI)


class TestInstanceRestart:
    def _run_with_vm_death(self, tmp_path, instances, restart_limit=1):
        federation, api, poller, config = build_world(
            tmp_path, RecoveryConfig(enabled=True, restart_limit=restart_limit),
            instances=instances)
        sim = federation.sim
        coordinator = Coordinator(api, config, poller=poller)
        instance = PatchworkInstance(
            api=api, mflib=coordinator.mflib, config=config, site="STAR",
            poller=poller, rng=coordinator.seeds.rng("occasion0/STAR"))
        sim.schedule(0.0, instance.start)

        def arm_kill():
            acq = instance.acquisition
            if instance.finished:
                return
            if acq is not None and acq.live_slice is not None:
                federation.faults.schedule_vm_death(
                    sim, acq.live_slice, sim.now + 1.0)
            else:
                sim.schedule(5.0, arm_kill)

        sim.schedule(5.0, arm_kill)
        sim.run(until=2500.0)
        assert instance.finished
        return federation, instance.result

    def test_vm_death_restarts_and_degrades(self, tmp_path):
        federation, result = self._run_with_vm_death(tmp_path, instances=2)
        assert federation.faults.mid_run_faults_fired == 1
        assert result.restarts == 1
        assert result.recovered
        assert result.outcome is RunOutcome.DEGRADED
        assert len(result.samples) > 0
        assert len(result.pcap_paths) > 0

    def test_lone_vm_death_aborts_but_salvages(self, tmp_path):
        _federation, result = self._run_with_vm_death(tmp_path, instances=1)
        # Every slot died with the only VM: nothing to restart onto.
        assert result.outcome is RunOutcome.INCOMPLETE
        assert "no usable slots" in result.abort_reason
        # abort still gathered the partial pcaps and the log.
        assert len(result.pcap_paths) > 0
        assert result.log is not None

    def test_restart_limit_zero_aborts(self, tmp_path):
        _federation, result = self._run_with_vm_death(
            tmp_path, instances=2, restart_limit=0)
        assert result.outcome is RunOutcome.INCOMPLETE
        assert result.restarts == 0

    def test_storage_exhaustion_never_restarts(self, tmp_path):
        federation, api, poller, config = build_world(
            tmp_path, RecoveryConfig(enabled=True))
        config.plan = SamplingPlan(sample_duration=2, sample_interval=10,
                                   samples_per_run=4, runs_per_cycle=2,
                                   cycles=2)
        coordinator = Coordinator(api, config, poller=poller)
        instance = PatchworkInstance(
            api=api, mflib=coordinator.mflib, config=config, site="STAR",
            poller=poller, rng=coordinator.seeds.rng("occasion0/STAR"))
        sim = federation.sim
        sim.schedule(0.0, instance.start)

        def shrink_quota():
            if instance._watchdog is not None:
                instance._watchdog.disk_quota_bytes = 1.0
            elif not instance.finished:
                sim.schedule(5.0, shrink_quota)

        sim.schedule(5.0, shrink_quota)
        sim.run(until=2500.0)
        result = instance.result
        assert result.outcome is RunOutcome.INCOMPLETE
        assert "storage" in result.abort_reason
        assert result.restarts == 0


class TestCoordinatorRedispatch:
    def test_failed_site_redispatched_and_recovers(self, tmp_path):
        federation, api, poller, config = build_world(
            tmp_path, RecoveryConfig(enabled=True, retry_attempts=2,
                                     retry_base_delay=5.0, retry_max_delay=10.0,
                                     retry_deadline=30.0))
        federation.faults.add_outage(0.0, 160.0, reason="long incident",
                                     sites={"MICH"})
        coordinator = Coordinator(api, config, poller=poller)
        bundle = coordinator.run_profile()
        result = bundle.results["MICH"]
        assert bundle.redispatches == 1
        assert result.redispatched
        assert result.outcome in (RunOutcome.SUCCESS, RunOutcome.DEGRADED)
        # The healthy sites were not re-dispatched.
        assert not bundle.results["STAR"].redispatched
        assert not bundle.results["UTAH"].redispatched

    def test_redispatch_flagged_even_when_retry_fails(self, tmp_path):
        federation, api, poller, config = build_world(
            tmp_path, RecoveryConfig(enabled=True, retry_attempts=2,
                                     retry_base_delay=5.0, retry_max_delay=10.0,
                                     retry_deadline=30.0))
        federation.faults.add_outage(0.0, 1e9, reason="permanent incident",
                                     sites={"MICH"})
        coordinator = Coordinator(api, config, poller=poller)
        bundle = coordinator.run_profile()
        result = bundle.results["MICH"]
        assert bundle.redispatches == 1
        assert result.redispatched
        assert result.outcome is RunOutcome.FAILED

    def test_no_redispatch_when_recovery_disabled(self, tmp_path):
        federation, api, poller, config = build_world(
            tmp_path, RecoveryConfig(enabled=False))
        federation.faults.add_outage(0.0, 160.0, sites={"MICH"})
        coordinator = Coordinator(api, config, poller=poller)
        bundle = coordinator.run_profile()
        assert bundle.redispatches == 0
        assert not any(r.redispatched for r in bundle.results.values())


class TestRunRecordAccounting:
    def test_records_carry_recovery_counters(self, tmp_path):
        federation, api, poller, config = build_world(
            tmp_path, RecoveryConfig(enabled=True))
        federation.faults.add_outage(0.0, 300.0, sites={"STAR"})
        coordinator = Coordinator(api, config, poller=poller)
        bundle = coordinator.run_profile()
        by_site = {r.site: r for r in bundle.run_records}
        assert by_site["STAR"].retries > 0
        assert by_site["MICH"].retries == 0
        summary = recovery_summary(bundle.run_records)
        assert summary["retries"] == by_site["STAR"].retries
        assert summary["redispatched_runs"] == 0

    def test_disabled_recovery_keeps_counters_zero(self, tmp_path):
        _federation, api, poller, config = build_world(
            tmp_path, RecoveryConfig(enabled=False))
        coordinator = Coordinator(api, config, poller=poller)
        bundle = coordinator.run_profile()
        summary = recovery_summary(bundle.run_records)
        assert all(v == 0 for v in summary.values())
