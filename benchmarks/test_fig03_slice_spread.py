"""Fig 3: FABRIC slices tend to use resources spread across few sites.

Paper: 66.5 % of all FABRIC slices use a single site.
"""

from repro.study.slices import spread_table


def test_fig03_slice_spread(benchmark, slice_schedule):
    table = benchmark.pedantic(lambda: spread_table(slice_schedule),
                               rounds=1, iterations=1)
    print("\n" + table.render())
    single = table.rows[0]
    assert single[0] == 1
    # Paper: 66.5 % single-site.
    assert 0.62 <= single[1] <= 0.71
    # The CDF rises steeply: >= 90 % of slices within 4 sites.
    within_four = table.rows[3][2]
    assert within_four >= 0.9
