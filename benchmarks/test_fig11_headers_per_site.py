"""Fig 11: per-site protocol diversity.

Paper shape: sites differ widely in the number of distinct dissected
headers (diverse yet persistent workloads per site), and the deepest
header stack at every site is between 6 and 12 headers.
"""



def test_fig11_headers_per_site(benchmark, paper_profile):
    _bundle, report = paper_profile
    table = benchmark.pedantic(
        lambda: report.tables["header_diversity"], rounds=1, iterations=1)
    print("\n" + table.render())

    # The paper's figure covers sites with captured traffic; sites whose
    # sampled ports stayed idle have no dissected frames to count.
    rows = [row for row in table.rows if row[3] > 0]  # frames > 0
    distinct = [row[1] for row in rows]
    depth = [row[2] for row in rows]

    assert len(rows) >= 15
    # A spread of protocol diversity across sites (Fig 11 y1-axis).
    # Cross-site flows homogenize sites at simulation scale, so the
    # spread is narrower than the paper's, but it is present.
    assert max(distinct) >= min(distinct) + 2
    assert len(set(distinct)) >= 3     # not all sites identical
    assert max(distinct) >= 8          # protocol-diverse sites exist
    assert min(distinct) >= 3
    # Deepest stacks per site fall in the paper's 6-12 band (y2-axis)
    # for most sites that saw encapsulated traffic.
    deep_sites = [d for d in depth if d >= 6]
    assert len(deep_sites) >= len(depth) * 0.5
    assert max(depth) <= 12
