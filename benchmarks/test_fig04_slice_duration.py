"""Fig 4: duration of slices on FABRIC.

Paper: 75 % of slices last for 24 hours.
"""

from repro.study.slices import duration_table


def test_fig04_slice_duration(benchmark, slice_schedule):
    table = benchmark.pedantic(lambda: duration_table(slice_schedule),
                               rounds=1, iterations=1)
    print("\n" + table.render())
    cdf = dict(zip(table.column("duration_hours"), table.column("cdf")))
    # Paper anchor: P(duration <= 24 h) ~ 0.75.
    assert 0.69 <= cdf[24] <= 0.81
    # Long tail exists: some slices run for weeks.
    assert cdf[672] < 1.0
    # CDF is monotone.
    values = table.column("cdf")
    assert values == sorted(values)
