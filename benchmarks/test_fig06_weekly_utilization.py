"""Fig 6: utilization of FABRIC's network over each week of 2024.

Paper shape: activity ramps into deadline seasons (April, November)
and peaks the week before SC'24 with an average of 3.968 Tbps.
"""

import numpy as np

from repro.study.activity import SC24_WEEK, NetworkActivityModel


def test_fig06_weekly_utilization(benchmark, slice_schedule):
    model = NetworkActivityModel(slice_schedule)
    series = benchmark.pedantic(model.weekly_series, rounds=1, iterations=1)

    print("\nweek  mean_tbps")
    for entry in series:
        bar = "#" * int(entry.mean_tbps * 8) if entry.has_data else "(no data)"
        print(f"{entry.week:>4}  {entry.mean_tbps:7.3f}  {bar}")

    with_data = [w for w in series if w.has_data]
    peak = max(with_data, key=lambda w: w.mean_tbps)
    median = float(np.median([w.mean_tbps for w in with_data]))
    print(f"\npeak week={peak.week} (paper: week before SC'24 ~{SC24_WEEK}), "
          f"peak={peak.mean_tbps:.3f} Tbps (paper 3.968), median={median:.3f}")

    # Shape: the peak lands at the SC'24 run-up and towers over a
    # typical week; an April-season bump exists.
    assert abs(peak.week - SC24_WEEK) <= 2
    assert 1.5 <= peak.mean_tbps <= 10.0
    assert peak.mean_tbps > 3 * median
    spring = max(w.mean_tbps for w in with_data if 14 <= w.week <= 20)
    summer = float(np.median([w.mean_tbps for w in with_data
                              if 27 <= w.week <= 33]))
    assert spring > summer
    # The gray no-data bands exist, as in the figure.
    assert any(not w.has_data for w in series)
