"""Tracing overhead gate + critical-path trajectory (BENCH_trace.json).

Two claims the distributed-tracing layer must keep honest:

* **Overhead < 5%.**  Span open/close journaling rides the control
  path of every occasion (instances, captures, port selection,
  pipeline stages).  A full serial campaign timed with the tracer
  forced off versus on bounds what tracing costs end to end.
* **The critical path agrees serial vs. sharded.**  The span chain
  that bounds the run must name the same bottleneck stage whether the
  occasion ran in one process or as per-site shard workers -- that
  agreement is what makes the profiler trustworthy for the roadmap's
  "which stage is the bottleneck at N workers" question.

Both results land in ``BENCH_trace.json``; CI's ``trace-overhead`` job
runs this module and uploads the JSON plus a Perfetto-loadable
``trace.json`` as artifacts.

Run with
``PYTHONPATH=src python -m pytest benchmarks/test_trace_overhead.py -v -s``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path

from repro.core.campaign import CampaignManifest, CampaignRunner
from repro.obs.journal import RunJournal
from repro.obs.trace import TraceTree, critical_path_summary
from repro.obs.tracing import Tracer

TRIALS = 3
MAX_TRACING_OVERHEAD = 0.05

_MANIFEST_KW = dict(
    seed=23, sites=("STAR", "MICH"), occasions=1, traffic_scale=0.005,
    sample_duration=2.0, sample_interval=10.0, samples_per_run=1,
    runs_per_cycle=1, cycles=1, desired_instances=1, traffic_span=120.0)
SERIAL = CampaignManifest(sharded=False, **_MANIFEST_KW)
SHARDED = CampaignManifest(sharded=True, **_MANIFEST_KW)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_trace.json"


def _merge_bench(section, payload):
    """Merge one section into BENCH_trace.json without clobbering what
    the other test in this module already recorded there."""
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@contextmanager
def tracer_forced_off():
    """Force every Tracer built inside the block to start disabled.

    The baseline run is the identical campaign minus span emission --
    the honest denominator for "what does tracing cost".
    """
    original = Tracer.__init__

    def disabled_init(self, journal, clock, enabled=True, context=None):
        original(self, journal, clock, enabled=False, context=context)

    Tracer.__init__ = disabled_init
    try:
        yield
    finally:
        Tracer.__init__ = original


def _best_of(fn, trials=TRIALS):
    best = float("inf")
    for _ in range(trials):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _timed_campaign(root: Path, manifest: CampaignManifest, tag: str,
                    trials: int = TRIALS) -> float:
    counter = [0]

    def run_once():
        run_dir = root / f"{tag}{counter[0]}"
        counter[0] += 1
        CampaignRunner(run_dir, manifest=manifest).run()

    return _best_of(run_once, trials)


def test_tracing_overhead_under_5_percent(tmp_path):
    # Untimed warmup: pay lazy imports and page-cache fills once.
    CampaignRunner(tmp_path / "warmup", manifest=SERIAL).run()

    with tracer_forced_off():
        baseline_s = _timed_campaign(tmp_path, SERIAL, "off")
        off_journal = RunJournal.read(tmp_path / "off0" / "journal.jsonl")
        assert not off_journal.of_kind("span-open"), \
            "baseline must carry no spans"
    traced_s = _timed_campaign(tmp_path, SERIAL, "on")
    journal = RunJournal.read(tmp_path / "on0" / "journal.jsonl")
    spans = len(journal.of_kind("span-open"))
    assert spans > 0, "traced run must journal spans"

    overhead = traced_s / baseline_s - 1.0
    print(f"\ncampaign ({spans} spans): untraced {baseline_s:.2f}s, "
          f"traced {traced_s:.2f}s -> overhead {overhead:+.2%} "
          f"(gate {MAX_TRACING_OVERHEAD:.0%})")
    _merge_bench("overhead", {
        "baseline_s": baseline_s,
        "traced_s": traced_s,
        "overhead_pct": round(100.0 * overhead, 3),
        "spans": spans,
        "gate_pct": 100.0 * MAX_TRACING_OVERHEAD,
        "trials": TRIALS,
    })
    assert overhead < MAX_TRACING_OVERHEAD


def test_critical_path_serial_vs_sharded(tmp_path):
    CampaignRunner(tmp_path / "serial", manifest=SERIAL).run()
    CampaignRunner(tmp_path / "sharded", manifest=SHARDED,
                   shard_workers=2).run()

    summaries = {}
    for tag in ("serial", "sharded"):
        journal = RunJournal.read(tmp_path / tag / "journal.jsonl")
        tree = TraceTree.from_journal(journal)
        assert tree.spans, f"{tag}: no spans reconstructed"
        assert not tree.dangling(), f"{tag}: dangling spans in clean run"
        path = tree.critical_path()
        assert path, f"{tag}: empty critical path"
        summaries[tag] = critical_path_summary(path)

    leaf = {tag: s["path"][-1]["name"] for tag, s in summaries.items()}
    print(f"\ncritical-path bottleneck: serial={leaf['serial']!r} "
          f"sharded={leaf['sharded']!r}")
    _merge_bench("critical_path", {
        "serial": {"total_sim": summaries["serial"]["total_sim"],
                   "stages": summaries["serial"]["stages"],
                   "bottleneck": leaf["serial"]},
        "sharded": {"total_sim": summaries["sharded"]["total_sim"],
                    "stages": summaries["sharded"]["stages"],
                    "bottleneck": leaf["sharded"]},
        "agree": leaf["serial"] == leaf["sharded"],
    })
    # The profiler must name the same bottleneck stage either way.
    assert leaf["serial"] == leaf["sharded"]
