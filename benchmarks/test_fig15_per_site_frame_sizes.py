"""Fig 15 / Appendix C: frame-size distribution at different sites.

Paper shape: significant variety across sites -- most sites carry a
proportion of smaller frames, and several sites are notable for
carrying jumbo frames.
"""



def test_fig15_per_site_frame_sizes(benchmark, paper_profile):
    _bundle, report = paper_profile
    table = benchmark.pedantic(
        lambda: report.tables["frame_sizes_by_site"], rounds=1, iterations=1)
    print("\n" + table.render())

    sites = table.column("site")
    jumbo = [float(x) for x in table.column("jumbo_fraction")]
    small = [float(x) for x in table.column("65-127")]
    super_jumbo = [float(x) for x in table.column("8192-16000")]

    # Keep only sites whose samples actually caught traffic.
    active = [i for i, s in enumerate(sites)
              if jumbo[i] + small[i] + super_jumbo[i] > 0]
    assert len(active) >= 10

    jumbo_active = [jumbo[i] for i in active]
    # Variety across sites: jumbo share spans a wide range (Fig 15).
    assert max(jumbo_active) - min(jumbo_active) > 0.3
    # Several sites are jumbo-dominated...
    assert sum(1 for j in jumbo_active if j > 0.6) >= 3
    # ...and jumbo-MTU (~9000 B) experiments show up at some sites.
    assert any(super_jumbo[i] > 0.1 for i in active)
    # Most sites carry some small frames.
    assert sum(1 for i in active if small[i] > 0.02) >= len(active) * 0.5
