"""Table 1: DPDK capture with 200 B truncation, 60:80 thresholds.

Paper rows (Frame size, Rate, Cores, Loss%):
    1514 B  100 Gbps   5 cores  0.67 %
    1024 B  100 Gbps  10 cores  0.13 %
     512 B   60 Gbps  15 cores  0.03 %
     128 B   15 Gbps  15 cores  0.10 %

The harness reproduces the measurement procedure: for each frame size,
find the fewest cores that carry 100 Gbps at < 1 % loss; if no core
count manages 100 Gbps, report the highest rate 15 cores can carry.
"""


from repro.capture.dpdk import DpdkCaptureModel, MAX_WORKER_CORES, OfferedLoad
from repro.capture.storage import PageCacheModel
from repro.util.tables import Table

PAPER_ROWS = {1514: (100, 5), 1024: (100, 10), 512: (60, 15), 128: (15, 15)}


def reproduce_table(truncation: int) -> Table:
    table = Table(["Frame Size (B)", "Rate (Gbps)", "Cores", "Loss (%)"],
                  title=f"{truncation}B truncation, 60:80 threshold")
    storage = PageCacheModel(dirty_background_ratio=60, dirty_ratio=80)
    for frame in (1514, 1024, 512, 128):
        probe = DpdkCaptureModel(truncation=truncation, storage=storage)
        full = OfferedLoad(100e9, frame, duration=10.0)
        cores = probe.min_cores_for(full)
        if cores is not None:
            rate_gbps = 100.0
        else:
            cores = MAX_WORKER_CORES
            model = DpdkCaptureModel(cores=cores, truncation=truncation,
                                     storage=storage)
            rate_gbps = model.max_rate_bps(frame) / 1e9
            rate_gbps = float(int(rate_gbps))  # report whole Gbps
        result = DpdkCaptureModel(cores=cores, truncation=truncation,
                                  storage=storage).offer(
            OfferedLoad(rate_gbps * 1e9, frame, duration=10.0))
        table.add_row([frame, rate_gbps, cores, round(result.loss_percent, 2)])
    return table


def test_table1_trunc200(benchmark):
    table = benchmark.pedantic(lambda: reproduce_table(200),
                               rounds=1, iterations=1)
    print("\n" + table.render())
    print("paper:", PAPER_ROWS)

    rows = {row[0]: (row[1], row[2], row[3]) for row in table.rows}
    # 100 Gbps reachable for 1514 and 1024 B at roughly the paper's cores.
    for frame in (1514, 1024):
        rate, cores, loss = rows[frame]
        assert rate == 100
        assert abs(cores - PAPER_ROWS[frame][1]) <= 1
        assert loss < 1.0
    # 512 B tops out near 60 Gbps, 128 B near 15 Gbps, both at 15 cores.
    assert 50 <= rows[512][0] <= 75 and rows[512][1] == 15
    assert 12 <= rows[128][0] <= 19 and rows[128][1] == 15
    # Cores needed never decrease as frames shrink.
    cores_by_frame = [rows[f][1] for f in (1514, 1024, 512, 128)]
    assert cores_by_frame == sorted(cores_by_frame)
    # Every reported operating point keeps loss under 1 %.
    assert all(rows[f][2] < 1.0 for f in rows)
