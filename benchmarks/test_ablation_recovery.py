"""Ablation: the fault-recovery layer on vs. off.

Same federation, same disturbance schedule (competitor slices, 180-s
back-end incidents, instance-crash probability) -- the only difference
is ``RecoveryConfig.enabled``.  Recovery off is the paper's original
Patchwork (Fig 10's ~79 % success shape); recovery on adds sim-time
retries, circuit breakers, bounded instance restart, and one
coordinator re-dispatch, and must strictly improve the success rate.
"""

from repro.core import PatchworkConfig, RecoveryConfig, SamplingPlan
from repro.core.status import recovery_summary
from repro.study.behavior import run_campaign
from repro.testbed import FederationBuilder, TestbedAPI

SITES = ["STAR", "MICH", "UTAH", "TACC", "NCSA", "WASH", "DALL", "SALT",
         "MASS", "MAXG", "UCSD", "CLEM"]


def run_variant(tmp_path, enabled):
    federation = FederationBuilder(seed=42).build(site_names=SITES)
    api = TestbedAPI(federation)
    config = PatchworkConfig(
        output_dir=tmp_path,
        plan=SamplingPlan(sample_duration=2, sample_interval=10,
                          samples_per_run=1, runs_per_cycle=1, cycles=1),
        desired_instances=2,
        recovery=RecoveryConfig(enabled=enabled),
    )
    return run_campaign(
        api, config, occasions=6, seed=23,
        total_shortage_fraction=0.10, partial_shortage_fraction=0.10,
        outage_fraction=0.7, outage_site_fraction=0.5,
        crash_probability=0.015,
        outage_duration=180.0,
    )


def test_ablation_recovery(benchmark, tmp_path):
    off = run_variant(tmp_path / "off", enabled=False)

    def recovered_campaign():
        return run_variant(tmp_path / "on", enabled=True)

    on = benchmark.pedantic(recovered_campaign, rounds=1, iterations=1)

    print("\n--- recovery off (paper baseline) ---")
    print(off.to_table().render())
    print(f"success rate: {off.success_rate:.1%}")
    print("\n--- recovery on ---")
    print(on.to_table().render())
    print(f"success rate: {on.success_rate:.1%}")
    summary = recovery_summary(on.records)
    print(f"recovery work: {summary}")

    # The same disturbance schedule hit both variants.
    assert len(on.records) == len(off.records) == 6 * len(SITES)
    # Recovery must strictly improve the occasion success rate...
    assert on.success_rate > off.success_rate
    # ...by actually doing recovery work, not by luck.
    assert summary["retries"] > 0
    assert summary["retries"] + summary["restarts"] + \
        summary["redispatched_runs"] > 0
    baseline = recovery_summary(off.records)
    assert all(v == 0 for v in baseline.values())
