"""Ablation: the fault-recovery layer on vs. off.

Same federation, same disturbance schedule (competitor slices, 180-s
back-end incidents, instance-crash probability) -- the only difference
is ``RecoveryConfig.enabled``.  Recovery off is the paper's original
Patchwork (Fig 10's ~79 % success shape); recovery on adds sim-time
retries, circuit breakers, bounded instance restart, and one
coordinator re-dispatch, and must strictly improve the success rate.
"""

from repro.core import PatchworkConfig, RecoveryConfig, SamplingPlan
from repro.core.status import recovery_summary
from repro.study.behavior import run_campaign
from repro.testbed import FederationBuilder, TestbedAPI

SITES = ["STAR", "MICH", "UTAH", "TACC", "NCSA", "WASH", "DALL", "SALT",
         "MASS", "MAXG", "UCSD", "CLEM"]


def run_variant(tmp_path, enabled):
    federation = FederationBuilder(seed=42).build(site_names=SITES)
    api = TestbedAPI(federation)
    config = PatchworkConfig(
        output_dir=tmp_path,
        plan=SamplingPlan(sample_duration=2, sample_interval=10,
                          samples_per_run=1, runs_per_cycle=1, cycles=1),
        desired_instances=2,
        recovery=RecoveryConfig(enabled=enabled),
    )
    return run_campaign(
        api, config, occasions=6, seed=23,
        total_shortage_fraction=0.10, partial_shortage_fraction=0.10,
        outage_fraction=0.7, outage_site_fraction=0.5,
        crash_probability=0.015,
        outage_duration=180.0,
    )


def test_ablation_recovery(benchmark, tmp_path):
    off = run_variant(tmp_path / "off", enabled=False)

    def recovered_campaign():
        return run_variant(tmp_path / "on", enabled=True)

    on = benchmark.pedantic(recovered_campaign, rounds=1, iterations=1)

    print("\n--- recovery off (paper baseline) ---")
    print(off.to_table().render())
    print(f"success rate: {off.success_rate:.1%}")
    print("\n--- recovery on ---")
    print(on.to_table().render())
    print(f"success rate: {on.success_rate:.1%}")
    summary = recovery_summary(on.records)
    print(f"recovery work: {summary}")

    # The same disturbance schedule hit both variants.
    assert len(on.records) == len(off.records) == 6 * len(SITES)
    # Recovery must strictly improve the occasion success rate...
    assert on.success_rate > off.success_rate
    # ...by actually doing recovery work, not by luck.
    assert summary["retries"] > 0
    assert summary["retries"] + summary["restarts"] + \
        summary["redispatched_runs"] > 0
    baseline = recovery_summary(off.records)
    assert all(v == 0 for v in baseline.values())


def test_robustness_trajectory(tmp_path):
    """Emit ``BENCH_robustness.json``: the machine-readable robustness
    trajectory (ROADMAP's first ``BENCH_*.json`` file).

    Three numbers: the durable campaign's run-success rate, the wall-
    clock overhead of a crash/resume cycle over the same campaign
    uninterrupted, and a seeded chaos batch (crash at fuzzed IO ops,
    resume, assert the three recovery oracles).
    """
    import json
    import time
    from pathlib import Path

    from repro.core.campaign import CampaignRunner
    from repro.testbed.chaos import (
        CrashingIO, default_manifest, run_chaos)
    from repro.util.atomio import SimulatedCrash
    from repro.util.rng import derive_rng

    manifest = default_manifest(seed=11)

    # Untimed warmup: pay the lazy imports and allocator caches once so
    # the overhead comparison measures the campaigns, not process state.
    CampaignRunner(tmp_path / "warmup", manifest=manifest).run()

    started = time.perf_counter()
    uninterrupted = CampaignRunner(tmp_path / "full",
                                   manifest=manifest).run()
    t_full = time.perf_counter() - started
    assert uninterrupted.audit_ok

    # Crash mid-campaign (after occasion 0 commits), then resume: the
    # overhead is the extra wall clock the crash/resume cycle costs
    # over just running the campaign once.
    started = time.perf_counter()
    io = CrashingIO(22, derive_rng(0, "bench"), mode="post-replace")
    try:
        CampaignRunner(tmp_path / "crashed", manifest=manifest,
                       io=io).run()
    except SimulatedCrash:
        pass
    resumed = CampaignRunner(tmp_path / "crashed",
                             manifest=manifest).run(resume=True)
    t_resumed = time.perf_counter() - started
    assert resumed.audit_ok
    assert resumed.journal_sha256 == uninterrupted.journal_sha256
    overhead_pct = 100.0 * (t_resumed - t_full) / t_full

    chaos = run_chaos(tmp_path / "chaos", trials=8, seed=11,
                      manifest=manifest)
    assert chaos.ok, chaos.render()

    payload = {
        "benchmark": "robustness",
        "run_success_pct": round(100.0 * uninterrupted.success_rate, 2),
        "resume_overhead_pct": round(overhead_pct, 1),
        "chaos_trials": chaos.trials,
        "chaos_trials_passed": chaos.passed,
        "occasions": manifest.occasions,
        "sites": list(manifest.sites),
        "seed": manifest.seed,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_robustness.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {out}: {payload}")
    assert payload["run_success_pct"] == 100.0
    assert payload["chaos_trials_passed"] == payload["chaos_trials"]
