"""Ablation: iterative back-off vs fail-fast acquisition.

The paper's back-off (scale the request down one NIC+VM at a time)
turns would-be failures on resource-pinched sites into degraded-but-
useful runs.  This ablation drains sites to varying NIC levels and
compares acquisition outcomes with and without back-off.
"""

from repro.core.backoff import acquire_with_backoff
from repro.core.logs import InstanceLog
from repro.testbed import FederationBuilder, TestbedAPI
from repro.testbed.slice_model import NodeRequest, SliceRequest
from repro.util.tables import Table


def drain_to(api, site, leave):
    free = api.available_resources(site).dedicated_nics
    take = int(free) - leave
    if take > 0:
        api.create_slice(SliceRequest(site=site, nodes=[
            NodeRequest(name=f"u{i}") for i in range(take)],
            name=f"drain-{site}-{leave}"))


def test_ablation_backoff(benchmark):
    def run():
        table = Table(["free_nics", "with_backoff", "granted", "fail_fast"],
                      title="Acquisition outcome vs free dedicated NICs "
                            "(requesting 3 listening nodes)")
        outcomes = {}
        for leave in (3, 2, 1, 0):
            federation = FederationBuilder(seed=42).build(
                site_names=["STAR", "MICH"])
            api = TestbedAPI(federation)
            drain_to(api, "STAR", leave)
            with_backoff = acquire_with_backoff(
                api, "STAR", 3, InstanceLog("STAR", "a"), max_backoffs=4)
            if with_backoff.acquired:
                api.delete_slice(with_backoff.live_slice.name)
            fail_fast = acquire_with_backoff(
                api, "STAR", 3, InstanceLog("STAR", "b"), max_backoffs=0)
            outcomes[leave] = (with_backoff, fail_fast)
            table.add_row([
                leave,
                "acquired" if with_backoff.acquired else "failed",
                with_backoff.granted_nodes,
                "acquired" if fail_fast.acquired else "failed",
            ])
        return table, outcomes

    table, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + table.render())

    # With 3 NICs both succeed at full size.
    assert outcomes[3][0].granted_nodes == 3
    assert outcomes[3][1].acquired
    # With 1-2 NICs, back-off still profiles (degraded); fail-fast dies.
    for leave in (2, 1):
        assert outcomes[leave][0].acquired
        assert outcomes[leave][0].granted_nodes == leave
        assert not outcomes[leave][1].acquired
    # With nothing left, both fail.
    assert not outcomes[0][0].acquired
