"""The telemetry tradeoff: latency-to-detect vs telemetry bytes.

The paper's congestion inference leans on SNMP counters polled every
five minutes -- cheap per poll, but a full counter walk of a ~64-port
switch per cycle, and blind until the next poll lands.  The streaming
telemetry subsystem claims both axes can be beaten at once:

* **sketch reports** (the ``egress-load`` query) ship a fixed-size
  count-min summary per window, so evidence arrives at window
  boundaries (seconds);
* **in-band stamps** ride the mirrored clones themselves, so evidence
  arrives the moment a high-occupancy frame reaches the capture host.

This benchmark runs a seeded sweep of sustained overload and clean
workloads through one real switch + mirror + capture world per sample,
judges all three detectors against the identical ledger ground truth
(mirror-egress drops), writes ``BENCH_telemetry.json``, and gates:

* sketch and in-band precision >= 0.9 and recall >= 0.7;
* both strictly beat SNMP-at-5-minute-polls on latency-to-detect;
* both ship fewer telemetry bytes than the full SNMP counter dumps.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.capture.session import CaptureSession
from repro.core.congestion import CongestionDetector
from repro.netsim.engine import Simulator
from repro.netsim.frame import Frame
from repro.obs.ledger import LedgerRecorder, detector_scorecards_from_ledgers
from repro.telemetry.mflib import MFlib
from repro.telemetry.query import (
    EGRESS_LOAD_QUERY,
    InbandCongestionDetector,
    IntStamper,
    Query,
    QueryRuntime,
    SketchCongestionDetector,
    snmp_reading,
)
from repro.telemetry.snmp import walk_bytes
from repro.telemetry.timeseries import CounterStore
from repro.testbed.nic import DedicatedNIC
from repro.testbed.switch import DOWNLINK, Switch
from repro.util.tables import Table

SEED = 2025
LINE_BPS = 80_000.0  # 10 kB/s mirror destination
FRAME_BYTES = 500
POLL_SECONDS = 300.0       # the paper's SNMP cadence
SAMPLE_SECONDS = 300.0     # one poll cycle of sustained workload
SKETCH_WINDOW = 15.0
SWITCH_PORTS = 64          # a full SNMP walk covers the whole switch
MAC_A = b"\x02\x00\x00\x00\x00\x01"
MAC_B = b"\x02\x00\x00\x00\x00\x02"

# Per-direction load fractions; both directions are mirrored, so the
# cloned stream carries 2x the fraction of the egress line rate.
CONGESTED = (0.55, 0.60, 0.65, 0.70, 0.80, 0.90)    # 1.1x - 1.8x egress
UNCONGESTED = (0.10, 0.15, 0.20, 0.25, 0.30, 0.40)  # 0.2x - 0.8x egress


def run_sample(fraction, jitter):
    """One poll cycle at ``fraction`` of line rate per direction."""
    sim = Simulator()
    # Queue limit is 32 frames deep: the in-band signal rides *surviving*
    # frames only (a stamped clone offered to a full queue is dropped,
    # evidence and all), so the queue must pass through the detector's
    # occupancy band slowly enough for a 1-in-8 stamp to land there.
    switch = Switch(sim, "tor", default_rate_bps=LINE_BPS,
                    queue_limit_bytes=16_000)
    switch.add_port("src", DOWNLINK)
    switch.add_port("dst", DOWNLINK)
    switch.add_port("mir", DOWNLINK)
    for i in range(SWITCH_PORTS - 3):       # idle ports the walk still pays
        switch.add_port(f"idle{i:02d}", DOWNLINK)
    switch.register_mac(MAC_B, "dst")
    switch.register_mac(MAC_A, "src")
    switch.create_mirror("src", "mir")
    switch.int_stamper = IntStamper(stamp_every=8)
    nic_port = DedicatedNIC().ports[0]
    nic_port.attach(switch.ports["mir"].link, "mir")
    store = CounterStore()
    walks = 0

    def poll():
        nonlocal walks
        walks += 1
        for port_id, counters in switch.port_counters().items():
            for name, value in counters.items():
                store.append("S", port_id, name, sim.now, value)

    def offer(when, port, dst, src):
        sim.schedule_at(when, switch.ports[port].link.rx.offer,
                        Frame(wire_len=FRAME_BYTES,
                              head=dst + src + b"\x08\x00" + b"\x00" * 50))

    reports = []
    runtime = QueryRuntime(sim, "S", seed=SEED, on_report=reports.append)
    runtime.install(switch, [
        Query(EGRESS_LOAD_QUERY)
        .filter(("direction", "==", "tx"))
        .map(key="port", value="wire_len")
        .reduce("count-min", epsilon=0.05, delta=0.05)
        .every(SKETCH_WINDOW)
        .watch(ports=("mir",), directions=("tx",))
        .build(),
    ])

    poll()                                       # free-running poll at t=0
    session = CaptureSession(sim, nic_port, None, int_strip=True)
    recorder = LedgerRecorder(switch, "S")
    session.start()
    window = recorder.open(mirrored_port="src", dest_port="mir",
                           method="tcpdump")
    start = sim.now
    runtime.arm(start)
    rate_Bps = (LINE_BPS / 8.0) * fraction * (1.0 + jitter)
    count = int(rate_Bps * SAMPLE_SECONDS / FRAME_BYTES)
    interval = SAMPLE_SECONDS / max(count, 1)
    for i in range(count):
        offer(start + i * interval, "src", MAC_B, MAC_A)
        offer(start + i * interval, "dst", MAC_A, MAC_B)
    sim.schedule_at(start + POLL_SECONDS, poll)  # the next 5-minute poll
    sim.run(until=start + SAMPLE_SECONDS)
    runtime.finalize(sim.now)
    stats = session.stop()
    end = sim.now

    verdict = CongestionDetector(MFlib(store)).check(
        "S", "src", LINE_BPS, start, end)
    detectors = {
        "snmp": snmp_reading(verdict.overloaded, POLL_SECONDS,
                             walk_bytes(SWITCH_PORTS, walks)).to_dict(),
        "sketch": SketchCongestionDetector().check(
            reports, "mir", LINE_BPS, start, end).to_dict(),
        "inband": InbandCongestionDetector().check(
            session.int_stamps, stats.frames_seen, start, end).to_dict(),
    }
    return window.close(stats, verdict=verdict.overloaded,
                        detectors=detectors)


def test_telemetry_tradeoff(tmp_path):
    rng = np.random.default_rng(SEED)
    workloads = [(f, True) for f in CONGESTED] + \
                [(f, False) for f in UNCONGESTED]
    rows = [run_sample(fraction, float(rng.uniform(-0.05, 0.05)))
            for fraction, _expect in workloads]
    cards = detector_scorecards_from_ledgers(rows)

    table = Table(["fraction_per_dir", "truth", "snmp", "sketch", "inband",
                   "sketch_latency", "inband_latency"],
                  title="Three-way detector sweep "
                        f"({len(rows)} seeded samples)")
    for (fraction, _), row in zip(workloads, rows):
        readings = row.detectors
        table.add_row([
            fraction, row.mirror_overloaded_truth,
            readings["snmp"]["overloaded"],
            readings["sketch"]["overloaded"],
            readings["inband"]["overloaded"],
            readings["sketch"]["latency"],
            round(readings["inband"]["latency"], 1)
            if readings["inband"]["latency"] is not None else None,
        ])
    print("\n" + table.render())
    for name in sorted(cards):
        print(cards[name].describe())

    # Every sample conserves exactly -- the scorecard's truth is sound.
    for row in rows:
        assert row.ok, (row.pcap, row.conservation_error())
    snmp, sketch, inband = cards["snmp"], cards["sketch"], cards["inband"]
    for card in (snmp, sketch, inband):
        assert card.samples == len(workloads)
        assert card.unanswerable == 0

    payload = {
        "benchmark": "telemetry-tradeoff",
        "samples": len(rows),
        "line_bps": LINE_BPS,
        "poll_seconds": POLL_SECONDS,
        "sketch_window_seconds": SKETCH_WINDOW,
        "switch_ports": SWITCH_PORTS,
        "seed": SEED,
        "detectors": {name: cards[name].to_dict()
                      for name in sorted(cards)},
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {out}")

    # Quality gates: both streaming detectors must match the SNMP
    # verdict's classification quality...
    for card in (sketch, inband):
        assert card.precision is not None and card.precision >= 0.9
        assert card.recall is not None and card.recall >= 0.7
    # ...while strictly beating 5-minute polling on latency-to-detect...
    assert snmp.latency_to_detect == POLL_SECONDS
    assert sketch.latency_to_detect < snmp.latency_to_detect
    assert inband.latency_to_detect < snmp.latency_to_detect
    # ...and shipping fewer bytes than the full counter dumps.
    assert sketch.telemetry_bytes < snmp.telemetry_bytes
    assert inband.telemetry_bytes < snmp.telemetry_bytes
