"""Fig 12: occurrence of protocol headers in FABRIC traffic.

Paper shape: Ethernet exceeds 100 % (Ethernet-in-Ethernet via
pseudowires); most traffic is VLAN/MPLS-tagged IPv4 carrying TCP;
IPv6 is only 1.93 % of frames.
"""


def test_fig12_header_occurrence(benchmark, paper_profile):
    _bundle, report = paper_profile
    table = benchmark.pedantic(
        lambda: report.tables["header_occurrence"], rounds=1, iterations=1)
    print("\n" + table.render(max_rows=20))
    print(f"ipv6 fraction: {report.ipv6_fraction:.4f} (paper 0.0193)")

    occurrence = dict(zip(table.column("header"),
                          table.column("percent_of_frames")))
    assert occurrence["eth"] > 100.0          # Ethernet-in-Ethernet
    assert occurrence["vlan"] > 80.0          # tagging is pervasive
    assert occurrence["mpls"] > 50.0
    assert occurrence["ipv4"] > 90.0          # IPv4 dominates
    assert occurrence["tcp"] > 60.0           # mostly TCP streams
    assert occurrence.get("ipv6", 0.0) < 6.0  # IPv6 rare (paper 1.93 %)
    assert 0.002 <= report.ipv6_fraction <= 0.06
    assert occurrence["ipv4"] > 20 * occurrence.get("ipv6", 0.05)
