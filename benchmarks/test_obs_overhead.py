"""Observability overhead guard (PR acceptance: < 5% on the hot path).

The digest hot path is the most instrumentation-sensitive code in the
repo (~100k ``dissect_record`` calls per corpus here).  The metrics
layer batches per-frame counts into local accumulators and flushes once
per pcap, so:

* with the registry **disabled** (the process default) the loop is the
  pre-instrumentation loop -- overhead indistinguishable from noise;
* with the registry **enabled** overhead must stay under 5%.

Timings take the best of several trials so a CI noise spike cannot fail
the gate spuriously.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_obs_overhead.py -v -s``.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.analysis.acap import digest_pcap
from repro.obs import Observability, scoped
from repro.packets.builder import FrameBuilder, FrameSpec
from repro.packets.headers import (
    DNSHeader, Ethernet, HTTPPayload, IPv4, IPv6, Payload, TCP, TLSRecord,
    UDP, VLAN,
)
from repro.packets.pcap import PcapRecord, PcapWriter

E1, E2 = "02:00:00:00:00:01", "02:00:00:00:00:02"
TOTAL_FRAMES = 100_000
PCAPS = 4
SNAPLEN = 200
TRIALS = 5
MAX_ENABLED_OVERHEAD = 0.05


def build_frames():
    build = FrameBuilder().build
    plain_tls = build(FrameSpec([Ethernet(E1, E2), IPv4("10.0.0.1", "10.0.0.2"),
                                 TCP(50000, 443), TLSRecord(), Payload(0)],
                                target_size=1500))
    vlan_http = build(FrameSpec([Ethernet(E1, E2), VLAN(301),
                                 IPv4("10.1.2.3", "10.4.5.6"), TCP(50001, 80),
                                 HTTPPayload(), Payload(0)], target_size=1000))
    v6_dns = build(FrameSpec([Ethernet(E1, E2),
                              IPv6("2001:db8::1", "2001:db8::2"),
                              UDP(50003, 53), DNSHeader()]))
    small_ack = build(FrameSpec([Ethernet(E1, E2), IPv4("10.0.0.1", "10.0.0.2"),
                                 TCP(50000, 443)]))
    return [plain_tls] * 5 + [vlan_http] * 2 + [v6_dns] + [small_ack] * 4


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    root = tmp_path_factory.mktemp("obs-bench")
    frames = build_frames()
    rng = random.Random(99)
    per_pcap = TOTAL_FRAMES // PCAPS
    paths = []
    for p in range(PCAPS):
        path = root / f"bench{p}.pcap"
        with PcapWriter(path, snaplen=SNAPLEN) as writer:
            for i in range(per_pcap):
                frame = frames[rng.randrange(len(frames))]
                writer.write(PcapRecord(i * 1e-5, frame[:SNAPLEN],
                                        orig_len=len(frame)))
        paths.append(path)
    return paths


def best_of(fn, trials=TRIALS):
    """Minimum wall time over several trials (robust to noise)."""
    best = float("inf")
    for _ in range(trials):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


class TestObsOverhead:
    def test_enabled_overhead_under_5_percent(self, corpus):
        digest_all = lambda: [digest_pcap(p) for p in corpus]
        digest_all()  # warm the page cache before timing anything

        baseline_s = best_of(digest_all)  # process default: obs disabled

        with scoped(Observability.create()) as obs:
            enabled_s = best_of(digest_all)
            assert obs.registry.get("digest.frames").value == \
                TOTAL_FRAMES * TRIALS

        overhead = enabled_s / baseline_s - 1.0
        print(f"\ndigest of {TOTAL_FRAMES:,} frames: "
              f"disabled {TOTAL_FRAMES / baseline_s:,.0f} f/s, "
              f"enabled {TOTAL_FRAMES / enabled_s:,.0f} f/s "
              f"-> overhead {overhead:+.2%} (gate {MAX_ENABLED_OVERHEAD:.0%})")
        assert overhead < MAX_ENABLED_OVERHEAD

    def test_disabled_costs_nothing(self, corpus):
        # The disabled path must not even look up instruments per frame:
        # one registry access per pcap, then the original loop verbatim.
        from repro.obs import get_obs

        assert not get_obs().enabled
        digest_all = lambda: [digest_pcap(p) for p in corpus]
        digest_all()
        disabled_s = best_of(digest_all)
        # Sanity floor rather than a flaky ~0% assertion: the disabled
        # run must stay within the enabled gate too.
        with scoped(Observability.create()):
            enabled_s = best_of(digest_all)
        assert disabled_s <= enabled_s * (1.0 + MAX_ENABLED_OVERHEAD)
