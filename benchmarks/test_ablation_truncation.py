"""Ablation: truncation-length sweep beyond the paper's 64/200 B.

Sweeps the DPDK writer's truncation from 32 B to 512 B and reports the
cores needed for 100 Gbps of 1514 B frames plus the 15-core capacity
for small frames -- quantifying the fidelity/throughput trade the
paper's Tables 1-2 sample at two points.  Also checks the analysis-side
constraint: the snaplen must cover the deepest header stack (the paper
chose 200 B for profiling, 64 B only for stress tests).
"""

from repro.analysis.dissect import Dissector
from repro.capture.dpdk import DpdkCaptureModel, OfferedLoad
from repro.packets.builder import FrameBuilder, FrameSpec
from repro.packets.headers import (
    Ethernet, IPv4, MPLS, Payload, PseudoWireControlWord, TCP, TLSRecord, VLAN,
)
from repro.util.tables import Table

# The capacity model is calibrated between the paper's two measured
# truncations (64 and 200 B); the sweep stays within a modest
# extrapolation of that range.
TRUNCATIONS = (32, 64, 96, 128, 200, 256)
E1, E2 = "02:00:00:00:00:01", "02:00:00:00:00:02"


def deep_frame():
    return FrameBuilder().build(FrameSpec([
        Ethernet(E1, E2), VLAN(100), MPLS(16), MPLS(17),
        PseudoWireControlWord(), Ethernet(E1, E2),
        IPv4("10.0.0.1", "10.0.0.2"), TCP(50000, 443), TLSRecord(),
        Payload(0)], target_size=1544))


def test_ablation_truncation(benchmark):
    frame = deep_frame()
    dissector = Dissector()

    def run():
        table = Table(["truncation", "cores_for_100G_1514B",
                       "cap_128B_gbps_15c", "full_stack_dissected"],
                      title="Truncation-length sweep")
        rows = {}
        for trunc in TRUNCATIONS:
            probe = DpdkCaptureModel(truncation=trunc)
            cores = probe.min_cores_for(OfferedLoad(100e9, 1514))
            cap = DpdkCaptureModel(cores=15, truncation=trunc).max_rate_bps(128) / 1e9
            names = dissector.dissect(frame[:trunc]).names
            complete = "tls" in names
            rows[trunc] = (cores, cap, complete)
            table.add_row([trunc, cores, round(cap, 1), complete])
        return table, rows

    table, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + table.render())

    # Throughput: cores needed never decrease with truncation length,
    # and small-frame capacity never increases.
    cores = [rows[t][0] for t in TRUNCATIONS]
    caps = [rows[t][1] for t in TRUNCATIONS]
    assert cores == sorted(cores)
    assert caps == sorted(caps, reverse=True)
    # Fidelity: 64 B cannot hold the deep PW stack; 200 B can -- the
    # reason the profile runs use 200 B.
    assert rows[64][2] is False
    assert rows[200][2] is True
