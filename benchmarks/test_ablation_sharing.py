"""Ablation: mirror-port sharing (future-work feature, Section 6.3).

Without an intermediate scheduling layer, "only a single FABRIC user at
a time can mirror a specific switch port": a second user's mirror
request simply conflicts.  With the :class:`MirrorScheduler`, both
users time-slice the port and each collects a capture.
"""


from repro.capture.session import CaptureSession
from repro.core.sharing import MirrorScheduler
from repro.testbed import FederationBuilder, TestbedAPI
from repro.testbed.errors import MirrorConflictError
from repro.testbed.slice_model import NodeRequest, SliceRequest
from repro.traffic.workloads import TrafficOrchestrator
from repro.util.tables import Table


def make_user(api, site, tag):
    """One 'user': a slice with a listening NIC."""
    live = api.create_slice(SliceRequest(
        site=site, nodes=[NodeRequest(name="listener")], name=f"user-{tag}"))
    nic_port = live.vm("listener").nic_ports[0]
    dest = api.switch_port_for_nic_port(site, nic_port)
    return live, nic_port, dest


def test_ablation_sharing(benchmark, tmp_path):
    federation = FederationBuilder(seed=42).build(site_names=["STAR", "MICH"])
    api = TestbedAPI(federation)
    orchestrator = TrafficOrchestrator(federation, seed=7, scale=0.03)
    orchestrator.setup()
    orchestrator.generate_window(0.0, 600.0)
    # The contended port: the busiest shared-NIC attachment at STAR.
    site = federation.site("STAR")
    target = site.switch_port_for(site.shared_nics[0].ports[0])

    def run():
        alice, alice_port, alice_dest = make_user(api, "STAR", "alice")
        bob, bob_port, bob_dest = make_user(api, "STAR", "bob")

        # --- Without sharing: first come, only served.
        api.create_port_mirror(alice, target, alice_dest)
        conflict = False
        try:
            api.create_port_mirror(bob, target, bob_dest)
        except MirrorConflictError:
            conflict = True
        api.delete_port_mirror(alice, alice.mirror_sessions[0])

        # --- With the scheduler: both lease the port in turn.
        scheduler = MirrorScheduler(federation.sim, max_lease_seconds=30.0)
        captured = {}

        def make_user_callbacks(live, nic_port, dest, name):
            session_box = {}

            def on_grant(lease):
                session_box["mirror"] = api.create_port_mirror(
                    live, lease.port_id, dest)
                capture = CaptureSession(
                    federation.sim, nic_port,
                    tmp_path / f"{name}.pcap", snaplen=200)
                capture.start()
                session_box["capture"] = capture

            def on_revoke(lease):
                captured[name] = session_box["capture"].stop()
                api.delete_port_mirror(live, session_box["mirror"])

            return on_grant, on_revoke

        for name, (live, port, dest) in (
            ("alice", (alice, alice_port, alice_dest)),
            ("bob", (bob, bob_port, bob_dest)),
        ):
            on_grant, on_revoke = make_user_callbacks(live, port, dest, name)
            scheduler.request("STAR", target, name, 30.0, on_grant, on_revoke)
        federation.sim.run(until=federation.sim.now + 70.0)
        return conflict, captured

    conflict, captured = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(["user", "frames_captured"],
                  title="Mirror sharing: both users sample the same port")
    for name, stats in sorted(captured.items()):
        table.add_row([name, stats.frames_captured])
    print("\nwithout scheduler: second user's mirror request conflicts:",
          conflict)
    print(table.render())

    assert conflict  # the paper's limitation, reproduced
    assert set(captured) == {"alice", "bob"}
    for stats in captured.values():
        assert stats.frames_captured > 0
