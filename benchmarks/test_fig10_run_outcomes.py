"""Fig 10: behaviour of Patchwork on FABRIC over a campaign of runs.

Paper: Patchwork profiled all sites in 79 % of cases; ~20 % of failures
were sites lacking resources or transient back-end trouble; the rest
were instance crashes ("Incomplete").
"""

from repro.core import PatchworkConfig, SamplingPlan
from repro.core.status import RunOutcome
from repro.study.behavior import run_campaign
from repro.testbed import FederationBuilder, TestbedAPI

SITES = ["STAR", "MICH", "UTAH", "TACC", "NCSA", "WASH", "DALL", "SALT",
         "MASS", "MAXG", "UCSD", "CLEM"]


def test_fig10_run_outcomes(benchmark, tmp_path):
    federation = FederationBuilder(seed=42).build(site_names=SITES)
    api = TestbedAPI(federation)
    config = PatchworkConfig(
        output_dir=tmp_path,
        plan=SamplingPlan(sample_duration=2, sample_interval=10,
                          samples_per_run=1, runs_per_cycle=1, cycles=1),
        desired_instances=2,
    )

    def campaign():
        return run_campaign(
            api, config, occasions=8, seed=23,
            total_shortage_fraction=0.10, partial_shortage_fraction=0.10,
            outage_fraction=0.25, outage_site_fraction=0.4,
            crash_probability=0.01,
        )

    result = benchmark.pedantic(campaign, rounds=1, iterations=1)
    print("\n" + result.to_table().render())
    print(result.timeline_table().render())
    print(f"\nsuccess rate: {result.success_rate:.1%} (paper: 79%)")

    fractions = result.fractions()
    # Paper shape: a solid majority of runs profile their site...
    assert 0.6 <= result.success_rate <= 0.95
    # ...failures exist and dominate the non-profiled remainder...
    assert fractions[RunOutcome.FAILED] > 0.03
    assert fractions[RunOutcome.FAILED] >= fractions[RunOutcome.INCOMPLETE]
    # ...and back-off produces degraded-but-profiled runs.
    assert fractions[RunOutcome.DEGRADED] > 0
