"""Ablation: dynamic resource scaling (future-work feature, Section 6.3).

Runs one Patchwork instance on a port-rich site with and without the
dynamic-scaling controller.  With scaling, the instance grows extra
listening nodes mid-run when NICs are free, covering more ports per
cycle; everything is still yielded back at teardown.
"""

import numpy as np

from repro.core.config import PatchworkConfig, SamplingPlan
from repro.core.instance import PatchworkInstance
from repro.core.scaling import ScalingController
from repro.core.status import RunOutcome
from repro.telemetry import MFlib, SNMPPoller
from repro.testbed import FederationBuilder, TestbedAPI
from repro.traffic.workloads import TrafficOrchestrator
from repro.util.tables import Table


def run_instance(tmp_path, with_scaling):
    federation = FederationBuilder(seed=42).build(site_names=["STAR", "MICH"])
    api = TestbedAPI(federation)
    poller = SNMPPoller(federation, interval=5.0)
    poller.start()
    orchestrator = TrafficOrchestrator(federation, seed=7, scale=0.02)
    orchestrator.setup()
    orchestrator.generate_window(0.0, 400.0)
    config = PatchworkConfig(
        output_dir=tmp_path / ("scaled" if with_scaling else "fixed"),
        plan=SamplingPlan(sample_duration=2, sample_interval=10,
                          samples_per_run=1, runs_per_cycle=1, cycles=4),
        desired_instances=1,
    )
    controller = (ScalingController(api, ports_per_slot_threshold=2.0,
                                    max_extra_nodes=2)
                  if with_scaling else None)
    instance = PatchworkInstance(
        api=api, mflib=MFlib(poller.store), config=config, site="STAR",
        poller=poller, rng=np.random.default_rng(0), scaling=controller)
    instance.start()
    while not instance.finished and federation.sim.step():
        pass
    leftovers = api.available_resources("STAR")
    return instance, controller, leftovers, federation


def test_ablation_scaling(benchmark, tmp_path):
    def run():
        fixed, _none, fixed_left, fed_a = run_instance(tmp_path, False)
        scaled, controller, scaled_left, fed_b = run_instance(tmp_path, True)
        return fixed, scaled, controller, fixed_left, scaled_left, fed_a, fed_b

    (fixed, scaled, controller, fixed_left, scaled_left,
     fed_a, fed_b) = benchmark.pedantic(run, rounds=1, iterations=1)

    def ports_covered(instance):
        return len({s.mirrored_port for s in instance.result.samples})

    table = Table(["variant", "outcome", "samples", "ports_covered", "grows"],
                  title="Dynamic scaling ablation (4 cycles, 1 initial node)")
    table.add_row(["fixed", fixed.result.outcome.value,
                   len(fixed.result.samples), ports_covered(fixed), 0])
    table.add_row(["scaled", scaled.result.outcome.value,
                   len(scaled.result.samples), ports_covered(scaled),
                   controller.grows])
    print("\n" + table.render())

    assert fixed.result.outcome is RunOutcome.SUCCESS
    assert scaled.result.outcome is RunOutcome.SUCCESS
    assert controller.grows >= 1
    # Growth translates into strictly more samples and port coverage.
    assert len(scaled.result.samples) > len(fixed.result.samples)
    assert ports_covered(scaled) >= ports_covered(fixed)
    # Nothing leaks: both variants return the site to its full inventory.
    assert fixed_left == scaled_left
