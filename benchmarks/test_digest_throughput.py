"""Digest-step throughput benchmark (PR acceptance: >= 2x speedups).

Two claims are measured over a >= 100k-frame synthetic corpus:

1. **Single-core fast path**: the fused ``dissect_record`` route must
   digest at >= 2x the throughput of the generic ``Dissector`` +
   ``abstract`` route (the seed implementation, still available by
   passing an explicit dissector).
2. **Warm pipeline**: a parallel run with a warm acap cache must beat
   the seed-equivalent serial generic run by >= 2x wall time.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_digest_throughput.py -v -s``.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.analysis.acap import digest_pcap
from repro.analysis.dissect import Dissector
from repro.analysis.pipeline import AnalysisPipeline
from repro.packets.builder import FrameBuilder, FrameSpec
from repro.packets.headers import (
    DNSHeader, Ethernet, HTTPPayload, IPv4, IPv6, MPLS, Payload,
    PseudoWireControlWord, TCP, TLSRecord, UDP, VLAN,
)
from repro.packets.pcap import PcapRecord, PcapWriter

E1, E2 = "02:00:00:00:00:01", "02:00:00:00:00:02"
TOTAL_FRAMES = 100_000
PCAPS = 4
SNAPLEN = 200


def build_frames():
    """A realistic stack mix, weighted toward the common cases."""
    build = FrameBuilder().build
    plain_tls = build(FrameSpec([Ethernet(E1, E2), IPv4("10.0.0.1", "10.0.0.2"),
                                 TCP(50000, 443), TLSRecord(), Payload(0)],
                                target_size=1500))
    vlan_http = build(FrameSpec([Ethernet(E1, E2), VLAN(301),
                                 IPv4("10.1.2.3", "10.4.5.6"), TCP(50001, 80),
                                 HTTPPayload(), Payload(0)], target_size=1000))
    mpls_pw = build(FrameSpec([Ethernet(E1, E2), MPLS(17000), MPLS(17001),
                               PseudoWireControlWord(), Ethernet(E1, E2),
                               IPv4("10.2.0.1", "10.2.0.2"), TCP(50002, 443),
                               TLSRecord(), Payload(0)], target_size=1544))
    v6_dns = build(FrameSpec([Ethernet(E1, E2),
                              IPv6("2001:db8::1", "2001:db8::2"),
                              UDP(50003, 53), DNSHeader()]))
    small_ack = build(FrameSpec([Ethernet(E1, E2), IPv4("10.0.0.1", "10.0.0.2"),
                                 TCP(50000, 443)]))
    # ~frame mix: mostly full-size data frames plus a stream of ACKs.
    return [plain_tls] * 4 + [vlan_http] * 2 + [mpls_pw] * 2 + \
        [v6_dns] + [small_ack] * 3


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """PCAPS pcap files totalling TOTAL_FRAMES truncated frames."""
    root = tmp_path_factory.mktemp("digest-bench")
    frames = build_frames()
    rng = random.Random(99)
    per_pcap = TOTAL_FRAMES // PCAPS
    paths = []
    for p in range(PCAPS):
        path = root / f"bench{p}.pcap"
        with PcapWriter(path, snaplen=SNAPLEN) as writer:
            for i in range(per_pcap):
                frame = frames[rng.randrange(len(frames))]
                writer.write(PcapRecord(i * 1e-5, frame[:SNAPLEN],
                                        orig_len=len(frame)))
        paths.append(path)
    return root, paths


def timed(fn):
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


class TestDigestThroughput:
    def test_fused_fast_path_2x_single_core(self, corpus):
        _root, paths = corpus
        generic_s, generic = timed(
            lambda: [digest_pcap(p, dissector=Dissector()) for p in paths])
        fused_s, fused = timed(lambda: [digest_pcap(p) for p in paths])
        frames = sum(len(a) for a in fused)
        assert frames >= TOTAL_FRAMES
        # Identical output either way.
        assert [a.records for a in fused] == [a.records for a in generic]
        speedup = generic_s / fused_s
        print(f"\nsingle-core digest: generic {frames / generic_s:,.0f} f/s, "
              f"fused {frames / fused_s:,.0f} f/s -> {speedup:.2f}x")
        assert speedup >= 2.0

    def test_warm_parallel_pipeline_2x_seed_serial(self, corpus, tmp_path):
        root, paths = corpus
        # Seed-equivalent baseline: serial, no cache, generic dissector.
        dissector = Dissector()
        seed_s, _ = timed(lambda: [digest_pcap(p, dissector=dissector)
                                   for p in paths])

        cache_dir = root / "cache"
        cold = AnalysisPipeline(max_workers=PCAPS, cache_dir=cache_dir)
        cold_s, _ = timed(lambda: cold.digest(paths))
        assert cold.stats.cache_misses == len(paths)

        warm = AnalysisPipeline(max_workers=PCAPS, cache_dir=cache_dir)
        warm_s, _ = timed(lambda: warm.digest(paths))
        assert warm.stats.cache_hits == len(paths)

        frames = warm.stats.total_frames
        print(f"\npipeline digest of {frames:,} frames: "
              f"seed-serial {seed_s:.2f}s, parallel-cold {cold_s:.2f}s, "
              f"parallel-warm {warm_s:.2f}s "
              f"-> warm speedup {seed_s / warm_s:.2f}x")
        print(warm.stats.render())
        assert seed_s / warm_s >= 2.0
