"""Section 8.2 "Frame sizes": the aggregate frame-size shares.

Paper: the most frequent bins are 1519-2047 B (74.7 %), 65-127 B
(14.15 %), and 128-255 B (5.79 %).  The 1519-2047 dominance is the
underlay's VLAN/MPLS/PW overhead pushing standard-MTU frames past
1518 B -- i.e. FABRIC's jumbo-frame prevalence (finding B5).
"""


def test_sec82_frame_sizes(benchmark, paper_profile):
    _bundle, report = paper_profile
    table = benchmark.pedantic(
        lambda: report.tables["frame_sizes_overall"], rounds=1, iterations=1)
    print("\n" + table.render())
    print(f"jumbo fraction: {report.jumbo_fraction:.3f}")

    shares = dict(zip(table.column("size_bin"), table.column("fraction")))
    ranked = sorted(shares, key=shares.get, reverse=True)
    print("top bins:", ranked[:3])

    # Bin ordering: 1519-2047 dominates, 65-127 second.
    assert ranked[0] == "1519-2047"
    assert ranked[1] == "65-127"
    # Magnitudes within tolerance of the paper's 74.7 % / 14.15 %.
    assert 0.55 <= shares["1519-2047"] <= 0.88
    assert 0.08 <= shares["65-127"] <= 0.30
    # Jumbo-class frames (>= 1519 B) dominate the byte/frame mix.
    assert report.jumbo_fraction > 0.5
