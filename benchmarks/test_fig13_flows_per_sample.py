"""Fig 13: frequency of distinct flow counts per traffic sample.

Paper shape: most samples contain few flows (under ~3000), while a
handful of samples catch storms of far more -- a strongly right-skewed
distribution.  (At simulation scale the absolute counts are smaller;
the skew is the reproduced shape.)
"""

import numpy as np


def test_fig13_flows_per_sample(benchmark, paper_profile):
    _bundle, report = paper_profile
    table = benchmark.pedantic(
        lambda: report.tables["flows_per_sample"], rounds=1, iterations=1)
    print("\n" + table.render())

    counts = np.array(report.flows_per_sample)
    nonzero = counts[counts > 0]
    print(f"samples={len(counts)} median={np.median(nonzero):.0f} "
          f"p90={np.percentile(nonzero, 90):.0f} max={nonzero.max()}")

    assert len(counts) >= 100          # plenty of samples across sites
    assert nonzero.size >= 50
    median = float(np.median(nonzero))
    # Right-skewed: the busiest samples dwarf the typical sample.
    assert nonzero.max() > 5 * max(median, 1.0)
    assert float(np.mean(nonzero)) > median
    # The majority of samples are small (the "fewer than 3000" mass).
    assert float(np.mean(nonzero <= 4 * median)) >= 0.7
