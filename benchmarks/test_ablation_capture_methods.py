"""Ablation: capture method choice across frame sizes and rates.

Compares the three capture paths (tcpdump / DPDK / FPGA+DPDK) on the
maximum rate each sustains at < 1 % loss, per frame size -- the
quantitative version of the paper's method hierarchy: tcpdump tops out
near 8.5 Gbps, raw DPDK reaches 100 Gbps for large frames, and FPGA
offload (hardware truncation + sampling) extends line-rate capture to
small frames.
"""

from repro.capture.dpdk import DpdkCaptureModel, OfferedLoad
from repro.capture.fpga import FpgaOffloadConfig, FpgaOffloadModel
from repro.capture.tcpdump import TcpdumpModel
from repro.util.tables import Table

FRAME_SIZES = (1514, 1024, 512, 128)
RATES_GBPS = (1, 5, 8, 10, 15, 28, 60, 100)


def max_rate_tcpdump(frame):
    model = TcpdumpModel(snaplen=200)
    best = 0
    for gbps in RATES_GBPS:
        if model.offer_constant_load(gbps * 1e9, frame, 30.0).loss_fraction < 0.01:
            best = gbps
    return best


def max_rate_dpdk(frame, offload=False):
    writer = DpdkCaptureModel(cores=15, truncation=200)
    fpga = FpgaOffloadModel(FpgaOffloadConfig(truncation=200, sample_one_in=8))
    best = 0
    for gbps in RATES_GBPS:
        load = OfferedLoad(gbps * 1e9, frame)
        result = (fpga.offer_through(writer, load) if offload
                  else writer.offer(load))
        if result.loss_percent < 1.0:
            best = gbps
    return best


def test_ablation_capture_methods(benchmark):
    def run():
        table = Table(["frame_size", "tcpdump_gbps", "dpdk_gbps",
                       "fpga_dpdk_gbps"],
                      title="Max sustained rate (<1% loss) per capture method")
        rows = {}
        for frame in FRAME_SIZES:
            row = (max_rate_tcpdump(frame), max_rate_dpdk(frame),
                   max_rate_dpdk(frame, offload=True))
            rows[frame] = row
            table.add_row([frame, *row])
        return table, rows

    table, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + table.render())

    for frame in FRAME_SIZES:
        tcpdump, dpdk, fpga = rows[frame]
        # The paper's hierarchy holds at every frame size.
        assert tcpdump <= dpdk <= fpga
    # tcpdump's knee: fine at 8, gone by 10 (for 1514 B frames).
    assert rows[1514][0] == 8
    # DPDK reaches 100G for large frames but not for 128 B...
    assert rows[1514][1] == 100
    assert rows[128][1] < 100
    # ...while FPGA offload reaches 100G even at 128 B.
    assert rows[128][2] == 100
