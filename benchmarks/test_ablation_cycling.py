"""Ablation: port-cycling heuristics.

Compares the paper's default "busiest-bias, 1/n other non-idle"
heuristic against the alternatives (all-ports round-robin, uplinks
only, fixed ports) on two metrics over many cycles with one mirror
slot: *coverage* (distinct non-idle ports ever sampled) and *traffic
weight* (how much of the sampling time was pointed at busy ports).

Expected outcome (the design rationale of Section 6.2.2): busiest-bias
captures far more traffic weight than round-robin while still covering
nearly every non-idle port -- i.e. it trades a little coverage speed
for a lot of sample relevance.
"""

import numpy as np

from repro.core.cycling import (
    AllPortsSelector, BusiestBiasSelector, SelectionContext,
    UplinksOnlySelector,
)
from repro.telemetry.mflib import MFlib
from repro.telemetry.timeseries import CounterStore
from repro.util.tables import Table

# A synthetic site: 12 downlinks with a heavy-tailed rate profile,
# 2 uplinks, 6 idle ports.
PORT_RATES = {f"p{i}": rate for i, rate in enumerate(
    [4000, 1500, 800, 400, 200, 100, 50, 20, 10, 5, 2, 1])}
PORT_RATES.update({f"idle{i}": 0.0 for i in range(6)})
PORT_RATES.update({"u1": 900.0, "u2": 600.0})
UPLINKS = ["u1", "u2"]
CYCLES = 60


def build_mflib():
    store = CounterStore()
    for t_index, t in enumerate([0.0, 300.0, 600.0]):
        for port, mbps in PORT_RATES.items():
            store.append("S", port, "tx_bytes", t, t_index * mbps * 1e6 / 8 * 300)
            store.append("S", port, "rx_bytes", t, 0)
            store.append("S", port, "tx_drops", t, 0)
            store.append("S", port, "rx_drops", t, 0)
    return MFlib(store)


def evaluate(selector):
    mflib = build_mflib()
    rng = np.random.default_rng(5)
    history = {}
    sampled = []
    for cycle in range(CYCLES):
        ctx = SelectionContext(
            site="S", candidates=sorted(PORT_RATES), uplink_ids=UPLINKS,
            mflib=mflib, now=600.0, window=600.0, idle_threshold_bps=1000.0,
            cycle_index=cycle, history=history, rng=rng,
        )
        for port in selector.select(ctx, slots=1):
            history[port] = cycle
            sampled.append(port)
    non_idle = {p for p, r in PORT_RATES.items() if r > 0}
    coverage = len(set(sampled) & non_idle) / len(non_idle)
    total_rate = sum(PORT_RATES.values())
    weight = sum(PORT_RATES[p] for p in sampled) / (CYCLES * total_rate)
    return coverage, weight


def test_ablation_cycling(benchmark):
    def run():
        table = Table(["selector", "non_idle_coverage", "traffic_weight"],
                      title=f"Port-cycling ablation ({CYCLES} cycles, 1 slot)")
        results = {}
        for name, selector in (
            ("busiest-bias", BusiestBiasSelector(n=4)),
            ("all-ports", AllPortsSelector()),
            ("uplinks-only", UplinksOnlySelector()),
        ):
            coverage, weight = evaluate(selector)
            results[name] = (coverage, weight)
            table.add_row([name, round(coverage, 3), round(weight, 4)])
        return table, results

    table, results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + table.render())

    # The default heuristic concentrates on traffic...
    assert results["busiest-bias"][1] > 2 * results["all-ports"][1]
    # ...without starving coverage of non-idle ports.
    assert results["busiest-bias"][0] >= 0.8
    # Uplinks-only sees only the two uplinks.
    assert results["uplinks-only"][0] <= 2 / 14 + 0.01
