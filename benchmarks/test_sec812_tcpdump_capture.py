"""Section 8.1.2: software-based capture with tcpdump.

Paper: with a 32 MB buffer and 64 B truncation, tcpdump "was able to
capture packets without packet loss until about 8.5 Gbps" for 1500 B
frames, while the iperf3 pair sustained 11 Gbps.
"""

from repro.capture.tcpdump import TcpdumpModel
from repro.util.tables import Table


def test_sec812_tcpdump_capture(benchmark):
    model = TcpdumpModel(buffer_bytes="32MB", snaplen=64)

    def sweep():
        table = Table(["rate_gbps", "loss_percent"],
                      title="tcpdump capture of 1500B frames (64B snaplen)")
        for gbps in (2, 4, 6, 8, 8.5, 9, 10, 11, 12):
            result = model.offer_constant_load(gbps * 1e9, 1500, duration=30.0)
            table.add_row([gbps, round(result.loss_fraction * 100, 3)])
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + table.render())
    knee = model.max_lossless_rate_bps(1500) / 1e9
    print(f"loss-free knee: {knee:.2f} Gbps (paper ~8.5)")

    loss = dict(zip(table.column("rate_gbps"), table.column("loss_percent")))
    # Loss-free through 8 Gbps; lossy by 10 Gbps; knee near 8.5.
    assert loss[8] == 0.0
    assert loss[10] > 0.0
    assert 8.0 <= knee <= 9.2
    # Loss grows monotonically past the knee.
    assert loss[12] > loss[10]
