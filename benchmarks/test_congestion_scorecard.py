"""Detector quality: the SNMP congestion verdict vs ledger ground truth.

The paper's congestion detection (Section 6.2.2) infers mirror-egress
overload from polled counters alone: Mirrored(Tx) + Mirrored(Rx) above
the destination line rate.  The conservation ledger gives us what the
real system never had -- per-sample ground truth (did the mirror egress
actually drop frames?) -- so the inference can be judged like a
classifier.  This benchmark runs a seeded sweep of congested and
uncongested workloads through a real switch + NIC + capture session,
scores every verdict against ledger truth, and gates on
precision >= 0.9 and recall >= 0.7.
"""

import numpy as np

from repro.capture.session import CaptureSession
from repro.core.congestion import CongestionDetector
from repro.netsim.engine import Simulator
from repro.netsim.frame import Frame
from repro.obs.ledger import LedgerRecorder, scorecard_from_ledgers
from repro.telemetry.mflib import MFlib
from repro.telemetry.timeseries import CounterStore
from repro.testbed.nic import DedicatedNIC
from repro.testbed.switch import DOWNLINK, Switch
from repro.util.tables import Table

SEED = 2024
LINE_BPS = 80_000.0  # 10 kB/s mirror destination
FRAME_BYTES = 500
SAMPLE_SECONDS = 20.0
MAC_A = b"\x02\x00\x00\x00\x00\x01"
MAC_B = b"\x02\x00\x00\x00\x00\x02"

# Per-direction load fractions; both directions are mirrored, so the
# cloned stream carries 2x the fraction of the egress line rate.
CONGESTED = (0.55, 0.60, 0.65, 0.70, 0.80, 0.90)    # 1.1x - 1.8x egress
UNCONGESTED = (0.10, 0.15, 0.20, 0.25, 0.30, 0.40)  # 0.2x - 0.8x egress


def run_sample(fraction, jitter):
    """One capture window at ``fraction`` of line rate per direction."""
    sim = Simulator()
    switch = Switch(sim, "tor", default_rate_bps=LINE_BPS,
                    queue_limit_bytes=4000)
    switch.add_port("src", DOWNLINK)
    switch.add_port("dst", DOWNLINK)
    switch.add_port("mir", DOWNLINK)
    switch.register_mac(MAC_B, "dst")
    switch.register_mac(MAC_A, "src")
    switch.create_mirror("src", "mir")
    nic_port = DedicatedNIC().ports[0]
    nic_port.attach(switch.ports["mir"].link, "mir")
    store = CounterStore()

    def poll():
        for port_id, counters in switch.port_counters().items():
            for name, value in counters.items():
                store.append("S", port_id, name, sim.now, value)

    def offer(when, port, dst, src):
        sim.schedule_at(when, switch.ports[port].link.rx.offer,
                        Frame(wire_len=FRAME_BYTES,
                              head=dst + src + b"\x08\x00" + b"\x00" * 50))

    poll()
    session = CaptureSession(sim, nic_port, None)
    recorder = LedgerRecorder(switch, "S")
    session.start()
    window = recorder.open(mirrored_port="src", dest_port="mir",
                           method="tcpdump")
    start = sim.now
    rate_Bps = (LINE_BPS / 8.0) * fraction * (1.0 + jitter)
    count = int(rate_Bps * SAMPLE_SECONDS / FRAME_BYTES)
    interval = SAMPLE_SECONDS / max(count, 1)
    for i in range(count):
        offer(start + i * interval, "src", MAC_B, MAC_A)
        offer(start + i * interval, "dst", MAC_A, MAC_B)
    sim.run(until=start + SAMPLE_SECONDS)
    poll()
    stats = session.stop()
    verdict = CongestionDetector(MFlib(store)).check(
        "S", "src", LINE_BPS, start, sim.now)
    return window.close(stats, verdict=verdict.overloaded)


def test_congestion_detector_scorecard(benchmark):
    rng = np.random.default_rng(SEED)
    workloads = [(f, True) for f in CONGESTED] + \
                [(f, False) for f in UNCONGESTED]

    def run():
        rows = []
        for fraction, _expect in workloads:
            jitter = float(rng.uniform(-0.05, 0.05))
            rows.append(run_sample(fraction, jitter))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    card = scorecard_from_ledgers(rows)

    table = Table(["fraction_per_dir", "generated", "captured",
                   "mirror_egress_drops", "verdict", "truth"],
                  title="Congestion-detector sweep "
                        f"({len(rows)} seeded samples)")
    for (fraction, _), row in zip(workloads, rows):
        table.add_row([fraction, row.generated, row.captured,
                       row.drops["mirror-egress"], row.verdict_overloaded,
                       row.mirror_overloaded_truth])
    print("\n" + table.render())
    confusion = Table(["", "truth_overloaded", "truth_clean"],
                      title="Confusion matrix")
    confusion.add_row(["verdict_overloaded", card.tp, card.fp])
    confusion.add_row(["verdict_clean", card.fn, card.tn])
    print("\n" + confusion.render())
    print(f"\n{card.describe()}")

    # Every sample conserves exactly -- the scorecard's truth is sound.
    for row in rows:
        assert row.ok, (row.pcap, row.conservation_error())
    # Every sample got a verdict (the store was polled enough to answer).
    assert card.unanswerable == 0
    assert card.samples == len(workloads)
    # Quality gates.
    assert card.precision is not None and card.precision >= 0.9
    assert card.recall is not None and card.recall >= 0.7
