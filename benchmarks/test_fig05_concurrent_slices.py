"""Fig 5: number of simultaneous slices on FABRIC.

Paper: mean 85, standard deviation 52, at most 272 simultaneous slices.
"""

import numpy as np

from repro.study.slices import concurrency_summary


def test_fig05_concurrent_slices(benchmark, slice_schedule):
    def run():
        return slice_schedule.concurrency_series()

    times, counts = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + concurrency_summary(slice_schedule).render())
    mean = float(np.mean(counts))
    std = float(np.std(counts))
    peak = int(np.max(counts))
    print(f"mean={mean:.1f} (paper 85)  std={std:.1f} (paper 52)  "
          f"max={peak} (paper 272)")
    assert 60 <= mean <= 115
    assert 30 <= std <= 85
    assert 180 <= peak <= 400
    # The testbed is always active (paper: never empty once warmed up).
    warm = counts[len(counts) // 10:]
    assert warm.min() > 0
