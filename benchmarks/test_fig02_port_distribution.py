"""Fig 2: distribution of ports across all production FABRIC sites.

Paper shape: every site has many more downlinks than uplinks, and
uplink counts are similar (low single digits) across sites.
"""

from repro.study.ports import port_distribution_table, uplink_summary
from repro.testbed import FederationBuilder


def test_fig02_port_distribution(benchmark):
    federation = FederationBuilder(seed=42).build()

    def run():
        return port_distribution_table(federation), uplink_summary(federation)

    table, summary = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n" + table.render())
    print(f"\ntotal downlinks={summary.total_downlinks} "
          f"uplinks={summary.total_uplinks} "
          f"uplink range=[{summary.min_uplinks}, {summary.max_uplinks}]")

    # Paper shape assertions.
    assert summary.sites == 30
    assert summary.every_site_downlink_heavy
    assert summary.total_downlinks > 3 * summary.total_uplinks
    assert summary.max_uplinks <= 8
