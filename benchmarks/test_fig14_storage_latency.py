"""Fig 14 / Appendix B: summed sys_writev latency vs page-cache usage.

Paper anchors: with (10:20) thresholds the summed latency at 21 % RAM
usage is 3283 ms; with (20:50) it is 13 ms -- two orders of magnitude
apart -- and the steep rise begins at the *midpoint* of the two
thresholds, before dirty_ratio is reached.
"""

from repro.capture.storage import PageCacheModel


def sweep(bg, ratio, max_percent=30):
    model = PageCacheModel(dirty_background_ratio=bg, dirty_ratio=ratio)
    return {p.usage_percent: p.summed_latency_ms
            for p in model.fill_sweep(max_usage_percent=max_percent)}


def test_fig14_storage_latency(benchmark):
    results = benchmark.pedantic(
        lambda: (sweep(10, 20), sweep(20, 50)), rounds=1, iterations=1)
    tight, loose = results

    print("\n%used   10:20 (ms)   20:50 (ms)")
    for percent in sorted(set(tight) & set(loose)):
        print(f"{percent:>5}   {tight[percent]:>10.1f}   {loose[percent]:>10.1f}")
    print(f"\nat 21% usage: 10:20 -> {tight[21]:.0f} ms (paper 3283), "
          f"20:50 -> {loose[21]:.0f} ms (paper 13)")

    # The paper's two anchor points, within half an order of magnitude.
    assert 1000 <= tight[21] <= 15000
    assert 2 <= loose[21] <= 90
    # Two orders of magnitude apart at the same usage.
    assert tight[21] / loose[21] > 30

    # Steep rise at the midpoint (15 % for 10:20), before dirty_ratio.
    assert tight[17] > 100 * max(tight[5], 0.001)
    # For 20:50 the midpoint is 35 %: at 21-30 % there is no cliff yet.
    assert loose[28] < 100

    # Appendix B's write budget: 8.5 GB/s against 60:80 stalls in ~8-9 s.
    budget = PageCacheModel(dirty_background_ratio=60,
                            dirty_ratio=80).seconds_until_throttle(8.5e9)
    print(f"60:80 budget at 8.5 GB/s: {budget:.1f} s (paper ~8-9 s)")
    assert 7.0 <= budget <= 10.0
