"""Shared fixtures for the paper-reproduction benchmarks.

The expensive world -- a 30-site federation with calibrated traffic,
one full Patchwork profiling occasion, and the analysis report -- is
built once per benchmark session and shared by every profile-derived
figure (Figs 11, 12, 13, 15 and the Section-8.2 frame-size shares).

Scale note: the simulation runs traffic at ``TRAFFIC_SCALE`` of the
paper's per-flow rates and sizes (frame counts scale accordingly;
frame *sizes*, protocol mix, and flow identities do not), and samples
for 5 s instead of 20 s.  EXPERIMENTS.md records the scaling applied
to each figure.
"""

from __future__ import annotations

import pytest

from repro.analysis import AnalysisPipeline
from repro.core import Coordinator, PatchworkConfig, SamplingPlan
from repro.telemetry import SNMPPoller
from repro.testbed import FederationBuilder, TestbedAPI
from repro.testbed.federation import DEFAULT_SITE_NAMES
from repro.traffic.schedule import SliceScheduleModel
from repro.traffic.workloads import TrafficOrchestrator

TRAFFIC_SCALE = 0.02
SAMPLE_SECONDS = 4.0


@pytest.fixture(scope="session")
def paper_profile(tmp_path_factory):
    """(bundle, report): one all-experiment profile over all 30 sites.

    The allocator's latency constants are shrunk for the fixture --
    thirty serialized slice allocations at realistic latencies would
    stretch the occasion (and the traffic that must flow through it)
    across half an hour of simulated time without changing any figure.
    """
    from repro.testbed.allocator import SliceAllocator

    saved = (SliceAllocator.BASE_LATENCY, SliceAllocator.PER_SLIVER_LATENCY)
    SliceAllocator.BASE_LATENCY = 2.0
    SliceAllocator.PER_SLIVER_LATENCY = 0.5
    try:
        federation = FederationBuilder(seed=42).build()
        api = TestbedAPI(federation)
        poller = SNMPPoller(federation, interval=20.0)
        poller.start()
        orchestrator = TrafficOrchestrator(federation, seed=7,
                                           scale=TRAFFIC_SCALE)
        orchestrator.setup()
        # Traffic covers the whole occasion: staggered setup plus the
        # sampling phase at every site.
        for window in range(3):
            orchestrator.generate_window(window * 100.0, 100.0)
        out = tmp_path_factory.mktemp("paper-profile")
        config = PatchworkConfig(
            output_dir=out,
            plan=SamplingPlan(sample_duration=SAMPLE_SECONDS,
                              sample_interval=20,
                              samples_per_run=2, runs_per_cycle=1, cycles=2),
            desired_instances=2,
        )
        bundle = Coordinator(api, config, poller=poller).run_profile(
            stagger=3.0)
        report = AnalysisPipeline().run(bundle.pcap_paths)
        return bundle, report
    finally:
        SliceAllocator.BASE_LATENCY, SliceAllocator.PER_SLIVER_LATENCY = saved


@pytest.fixture(scope="session")
def slice_schedule():
    """The 52-week synthetic slice history behind Figs 3-6."""
    return SliceScheduleModel(DEFAULT_SITE_NAMES, seed=11).generate(weeks=52)
