"""Sharded campaign throughput: sites-per-minute, serial vs. sharded.

The tentpole claim of the sharded runner is that per-site shard worlds
are embarrassingly parallel *without* giving up determinism: the same
campaign at ``--shard-workers 4`` must produce byte-identical artifacts
to ``--shard-workers 1`` while finishing materially faster on a
multi-core box.  This benchmark runs an eight-site sweep both ways,
emits ``BENCH_sharding.json`` with the honest sites-per-minute numbers,
and asserts:

* **parity, unconditionally** -- journal and records hash identical at
  both worker counts, clean conservation audit on both;
* **speedup, on capable hardware only** -- the >= 2x sites-per-minute
  gate applies when the host has at least four CPU cores (the CI
  runner's shape).  A single-core container cannot parallelize
  anything; it still proves parity and reports its real numbers.

A ``slow``-marked 32-site sweep (``test_sharding_sweep32``) repeats the
parity run at 4x the fleet size and merges its numbers into the same
JSON under ``sweep32`` -- the scaling trajectory toward the roadmap's
hundreds-of-sites target.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.campaign import CampaignManifest, CampaignRunner
from repro.core.checkpoint import sha256_file

SITES = ("STAR", "MICH", "UTAH", "TACC", "NCSA", "WASH", "DALL", "SALT")
WORKERS = 4

MANIFEST = CampaignManifest(
    seed=29, sites=SITES, occasions=1, traffic_scale=0.005,
    sample_duration=2.0, sample_interval=10.0, samples_per_run=1,
    runs_per_cycle=1, cycles=1, desired_instances=1, traffic_span=120.0,
    sharded=True)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sharding.json"


def _merge_bench(section, payload):
    """Merge one section into BENCH_sharding.json without clobbering
    what the other test in this module already recorded there."""
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _timed_run(run_dir, manifest, shard_workers):
    started = time.perf_counter()
    summary = CampaignRunner(run_dir, manifest=manifest,
                             shard_workers=shard_workers).run()
    elapsed = time.perf_counter() - started
    site_occasions = len(manifest.sites) * manifest.occasions
    return summary, elapsed, 60.0 * site_occasions / elapsed


def test_sharding_throughput(tmp_path):
    # Untimed warmup on one shard world: pay lazy imports once.
    warmup = CampaignManifest(
        seed=29, sites=SITES[:2], occasions=1, traffic_scale=0.005,
        sample_duration=2.0, sample_interval=10.0, samples_per_run=1,
        runs_per_cycle=1, cycles=1, desired_instances=1,
        traffic_span=120.0, sharded=True)
    CampaignRunner(tmp_path / "warmup", manifest=warmup).run()

    serial, t_serial, spm_serial = _timed_run(tmp_path / "serial",
                                              MANIFEST, 1)
    sharded, t_sharded, spm_sharded = _timed_run(tmp_path / "sharded",
                                                 MANIFEST, WORKERS)

    # Parity is the contract and holds on any hardware.
    assert serial.audit_ok and sharded.audit_ok
    assert sha256_file(tmp_path / "serial" / "journal.jsonl") == \
        sha256_file(tmp_path / "sharded" / "journal.jsonl")
    assert serial.records_sha256 == sharded.records_sha256

    cores = os.cpu_count() or 1
    speedup = spm_sharded / spm_serial
    payload = {
        "benchmark": "sharding-throughput",
        "sites": list(SITES),
        "occasions": MANIFEST.occasions,
        "shard_workers": WORKERS,
        "cpu_cores": cores,
        "serial_seconds": round(t_serial, 2),
        "sharded_seconds": round(t_sharded, 2),
        "serial_sites_per_minute": round(spm_serial, 2),
        "sharded_sites_per_minute": round(spm_sharded, 2),
        "speedup": round(speedup, 2),
        "parity": True,
        "seed": MANIFEST.seed,
    }
    _merge_bench("throughput8", payload)
    print(f"\nwrote {BENCH_PATH} [throughput8]: {payload}")

    # The >= 2x gate needs hardware that can actually run four shard
    # worlds at once; a 1-core container proves parity only.
    if cores >= 4:
        assert speedup >= 2.0, (
            f"sharded run managed only {speedup:.2f}x sites-per-minute "
            f"over serial on {cores} cores")


@pytest.mark.slow
def test_sharding_sweep32(tmp_path):
    """32-site sweep: a step toward the hundreds-of-sites target.

    Four times the standard benchmark's fleet through the same sharded
    runner, still under the unconditional parity contract: the merged
    journal and records must hash identical at 1 and 4 workers.  The
    honest sites-per-minute numbers land in BENCH_sharding.json under
    ``sweep32`` so the scaling trajectory (8 -> 32 -> ...) is recorded
    next to the standard benchmark, not instead of it.
    """
    sites32 = tuple(f"S{i:02d}" for i in range(32))
    manifest = CampaignManifest(
        seed=29, sites=sites32, occasions=1, traffic_scale=0.005,
        sample_duration=2.0, sample_interval=10.0, samples_per_run=1,
        runs_per_cycle=1, cycles=1, desired_instances=1,
        traffic_span=120.0, sharded=True)

    serial, t_serial, spm_serial = _timed_run(tmp_path / "serial",
                                              manifest, 1)
    sharded, t_sharded, spm_sharded = _timed_run(tmp_path / "sharded",
                                                 manifest, WORKERS)

    assert serial.audit_ok and sharded.audit_ok
    assert sha256_file(tmp_path / "serial" / "journal.jsonl") == \
        sha256_file(tmp_path / "sharded" / "journal.jsonl")
    assert serial.records_sha256 == sharded.records_sha256

    cores = os.cpu_count() or 1
    payload = {
        "sites": len(sites32),
        "occasions": manifest.occasions,
        "shard_workers": WORKERS,
        "cpu_cores": cores,
        "serial_seconds": round(t_serial, 2),
        "sharded_seconds": round(t_sharded, 2),
        "serial_sites_per_minute": round(spm_serial, 2),
        "sharded_sites_per_minute": round(spm_sharded, 2),
        "speedup": round(spm_sharded / spm_serial, 2),
        "parity": True,
        "seed": manifest.seed,
    }
    _merge_bench("sweep32", payload)
    print(f"\nwrote {BENCH_PATH} [sweep32]: {payload}")
