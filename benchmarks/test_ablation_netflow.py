"""Ablation: NetFlow-style operator telemetry vs Patchwork's analysis.

Section 4's motivation, made quantitative: operator-oriented flow
export keys on the outer IP five-tuple, so (a) slices reusing the same
10/8 addresses merge into one flow, and (b) pseudowire-encapsulated
traffic is opaque.  Patchwork classifies with virtualization tags and
sees through the encapsulation.
"""

import numpy as np

from repro.analysis.acap import abstract
from repro.analysis.dissect import Dissector
from repro.analysis.flows import classify_flows
from repro.telemetry.netflow import NetFlowExporter
from repro.testbed import FederationBuilder
from repro.traffic.encapsulation import EncapKind
from repro.traffic.endpoints import EndpointRegistry
from repro.traffic.flows import STANDARD_APPS, Flow
from repro.util.tables import Table


def test_ablation_netflow(benchmark):
    federation = FederationBuilder(seed=42).build(site_names=["STAR", "MICH"])
    registry = EndpointRegistry(federation)
    a = registry.create("STAR", "slice-a")
    b = registry.create("STAR", "slice-a")

    exporter = NetFlowExporter(federation.sim)
    exporter.attach_to_switch(federation.site("STAR").switch)

    captured = []
    b.nic_port.receive(captured.append)
    a.nic_port.receive(captured.append)

    def run():
        rng = np.random.default_rng(3)
        true_flows = 0
        # Ten flows in slice VLAN 100 and ten in slice VLAN 2900, all
        # reusing the same endpoints/ports -- only the tags differ.
        # The same rng seed per pair makes both slices draw identical
        # source ports: their five-tuples collide exactly, which is the
        # paper's "same 10/8 addresses in different slices" hazard.
        for vlan in (100, 2900):
            for i in range(10):
                Flow(sim=federation.sim, flow_id=vlan * 100 + i, src=a, dst=b,
                     app=STANDARD_APPS["iperf-tcp"], total_bytes=20_000,
                     rng=np.random.default_rng(i),
                     encap=EncapKind.VLAN_MPLS, vlan_id=vlan,
                     mpls_label=16000 + vlan,
                     start_time=federation.sim.now + i * 0.05).start()
                true_flows += 1
        # Plus five pseudowire-encapsulated flows: opaque to NetFlow.
        for i in range(5):
            Flow(sim=federation.sim, flow_id=90_000 + i, src=a, dst=b,
                 app=STANDARD_APPS["tls-web"], total_bytes=10_000,
                 rng=np.random.default_rng(90_000 + i),
                 encap=EncapKind.VLAN_MPLS_PW, vlan_id=500,
                 start_time=federation.sim.now + i * 0.05).start()
            true_flows += 1
        federation.sim.run(until=federation.sim.now + 60.0)
        # Patchwork's view: dissect the captured frames, classify by tags.
        dissector = Dissector()
        records = [abstract(dissector.dissect(f.captured_bytes(200)),
                            0.0, f.wire_len, 200) for f in captured]
        patchwork_flows = len(classify_flows(records))
        return true_flows, exporter.distinct_conversations(), patchwork_flows

    true_flows, netflow_flows, patchwork_flows = benchmark.pedantic(
        run, rounds=1, iterations=1)

    table = Table(["view", "distinct_conversations"], title="Flow visibility")
    table.add_row(["ground truth", true_flows])
    table.add_row(["NetFlow v5 (outer 5-tuple)", netflow_flows])
    table.add_row(["Patchwork (tags + 5-tuple)", patchwork_flows])
    print("\n" + table.render())
    print(f"NetFlow non-IP (pseudowire) frames: {exporter.non_ip_frames}")

    # NetFlow undercounts: duplicated-address slices merge, PW invisible.
    assert netflow_flows < true_flows
    # Patchwork resolves every flow.
    assert patchwork_flows == true_flows
    # The pseudowire traffic is specifically what NetFlow lost.
    assert exporter.non_ip_frames > 0