"""Table 2: DPDK capture with 64 B truncation, 60:80 thresholds.

Paper rows (Frame size, Rate, Cores, Loss%):
    1514 B  100 Gbps   3 cores  0.17 %
    1024 B  100 Gbps   5 cores  0.32 %
     512 B  100 Gbps  15 cores  0.07 %
     128 B   28 Gbps  15 cores  0.13 %

Headline: harsher truncation (64 B vs 200 B) reaches the same rates
with fewer cores, and extends 100 Gbps capture down to 512 B frames.
"""

from repro.capture.dpdk import DpdkCaptureModel, MAX_WORKER_CORES

from test_table1_trunc200 import reproduce_table

PAPER_ROWS = {1514: (100, 3), 1024: (100, 5), 512: (100, 15), 128: (28, 15)}


def test_table2_trunc64(benchmark):
    table = benchmark.pedantic(lambda: reproduce_table(64),
                               rounds=1, iterations=1)
    print("\n" + table.render())
    print("paper:", PAPER_ROWS)

    rows = {row[0]: (row[1], row[2], row[3]) for row in table.rows}
    # 100 Gbps reachable down to 512 B frames.
    for frame in (1514, 1024, 512):
        assert rows[frame][0] == 100
        assert rows[frame][2] < 1.0
    # Core counts near the paper's for the easy rows.
    assert abs(rows[1514][1] - 3) <= 1
    assert abs(rows[1024][1] - 5) <= 1
    assert rows[512][1] <= MAX_WORKER_CORES
    # 128 B tops out near 28 Gbps.
    assert 24 <= rows[128][0] <= 33

    # The Table 1 vs Table 2 comparison: fewer cores at 64 B truncation.
    table200 = reproduce_table(200)
    rows200 = {row[0]: row[2] for row in table200.rows}
    for frame in (1514, 1024):
        assert rows[frame][1] < rows200[frame]
    # And higher max rates for small frames.
    t64 = DpdkCaptureModel(cores=15, truncation=64)
    t200 = DpdkCaptureModel(cores=15, truncation=200)
    assert t64.max_rate_bps(128) > t200.max_rate_bps(128)
