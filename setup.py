"""Setup shim for environments without the `wheel` package.

The canonical metadata lives in pyproject.toml; this file exists so that
`pip install -e . --no-build-isolation --no-use-pep517` (the offline,
legacy editable path) also works.
"""
from setuptools import setup

setup()
